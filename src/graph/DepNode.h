//===- DepNode.h - Dependency graph nodes -----------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nodes and edges of the dynamic dependency graph of Section 4.1 of the
/// paper. Nodes represent incremental procedure instances (maintained
/// method calls / cached procedure calls) and the storage locations they
/// access; an edge (u -> v) records that v depends on u. Both the cached
/// value `value(u)` and the status bit `consistent(u)` of the paper live in
/// (subclasses of) DepNode.
///
/// DepNode itself is value-agnostic: the typed layers (alphonse::Cell,
/// alphonse::Maintained) and the Alphonse-L interpreter subclass it and
/// implement the two virtual hooks the evaluator needs (refreshStorage and
/// reexecute), so one evaluator serves both the C++ embedding and the toy
/// language.
///
/// Edges are stored by EdgeId in the graph's dense edge slab (DESIGN.md
/// "Engine layering and handle-based storage"), so an Edge is six 32-bit
/// handles — 24 bytes, half the footprint of the six raw pointers it
/// replaced — and an edge walk stays within a few slab cache lines.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_DEPNODE_H
#define ALPHONSE_GRAPH_DEPNODE_H

#include "graph/Handle.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace alphonse {

class DepGraph;
class DepNode;

/// One dependency: Sink depends on Source.
///
/// Edges are intrusively doubly linked (by EdgeId) into both the source's
/// successor list and the sink's predecessor list, so a single edge unlinks
/// in O(1). Section 9.2 of the paper requires exactly this ("a doubly
/// linked list of bidirectional edges") so that edge removal at procedure
/// re-execution can be charged to edge creation.
struct Edge {
  NodeId Source;
  NodeId Sink;
  EdgeId PrevSucc; ///< Links in Source's successor list.
  EdgeId NextSucc;
  EdgeId PrevPred; ///< Links in Sink's predecessor list.
  EdgeId NextPred;
};
static_assert(sizeof(Edge) == 24, "Edge must stay six packed 32-bit handles");

/// What a dependency-graph node stands for.
enum class NodeKind : uint8_t {
  /// A storage location (top-level variable, object field, array element).
  Storage,
  /// An incremental procedure instance: one (procedure, argument vector)
  /// pair of a maintained method or cached procedure.
  Procedure,
};

/// The paper's per-procedure evaluation strategies (Section 3.3).
enum class EvalStrategy : uint8_t {
  /// Update lazily, upon calls to the procedure.
  Demand,
  /// Update during change propagation, before subsequent call requests.
  Eager,
};

/// Base class for all dependency-graph nodes.
///
/// A node is registered with its DepGraph at construction — receiving a
/// generation-checked NodeId slot in the graph's node table — and
/// unregistered (edges detached, dependents invalidated, slot recycled) at
/// destruction. Nodes must not outlive their graph.
class DepNode {
public:
  DepNode(DepGraph &Graph, NodeKind Kind,
          EvalStrategy Strategy = EvalStrategy::Demand);
  virtual ~DepNode();

  DepNode(const DepNode &) = delete;
  DepNode &operator=(const DepNode &) = delete;

  NodeKind kind() const { return Kind; }
  bool isStorage() const { return Kind == NodeKind::Storage; }
  bool isProcedure() const { return Kind == NodeKind::Procedure; }
  EvalStrategy strategy() const { return Strategy; }

  /// This node's slot handle in the graph's node table. Valid for the
  /// node's whole registered lifetime; resolving it after destruction
  /// traps on the generation mismatch (debug) or yields null (tryNode).
  NodeId id() const { return Id; }

  /// The paper's consistent(u) bit: true when value(u) reflects the current
  /// program state. Procedures start inconsistent (never executed); storage
  /// nodes start consistent (snapshot taken at creation).
  bool isConsistent() const { return Consistent; }

  /// True while this procedure instance is on the incremental call stack.
  bool isExecuting() const { return Executing; }

  /// True while the node sits in the graph's quarantine set: its last
  /// recompute threw, diverged, or cycled, and it takes no further part in
  /// propagation until DepGraph::resetQuarantined() returns it to service.
  bool isQuarantined() const { return Quarantined; }

  /// True while this node's cached value is *stale*: a budgeted wave was
  /// cancelled before repairing it (or a node it transitively depends
  /// on), so readers are being served the last-quiescent value. Cleared
  /// the moment a later wave re-establishes the node's consistency, or
  /// wholesale when a wave runs the graph to full quiescence. Staleness
  /// is transient engine state — never journaled or checkpointed.
  bool isStale() const { return StaleSince != 0; }

  /// Depth of re-entrant (conventional) runs of this instance currently on
  /// the stack on top of its in-flight incremental execution. Nonzero
  /// means the instance's own value is being demanded while it computes —
  /// the generic in-flight cycle signal (bounded by
  /// Config::MaxReentrantDepth).
  uint32_t reentrantDepth() const { return ReentrantDepth; }

  /// Approximate topological height: 0 for storage, 1 + max source level
  /// for procedures, recorded during the last execution. Used only to order
  /// the evaluator's work; correctness never depends on it.
  uint32_t level() const { return Level; }

  /// Version stamp of this node's cached value: advanced (from a
  /// graph-global monotonic counter) whenever the value may have changed —
  /// at every procedure execution and at every storage refresh that
  /// observed a real change. A transactional rollback restores the
  /// pre-batch stamp, so external caches detect invalidation by comparing
  /// stamps for *equality* (a rolled-back stamp moves backward), without
  /// any O(graph) sweep. See DESIGN.md "Transactions and recovery".
  uint64_t version() const { return Version; }

  DepGraph &graph() const {
    assert(Graph && "node not attached to a graph");
    return *Graph;
  }

  /// Number of predecessor edges (nodes this one depends on). O(preds).
  size_t numPredecessors() const;
  /// Number of successor edges (nodes depending on this one). O(succs).
  size_t numSuccessors() const;

  /// Invokes \p F on every dependency source recorded by the most recent
  /// execution (most recently recorded first). Defined in DepGraph.h (the
  /// walk resolves EdgeIds through the graph's edge table).
  template <typename Fn> void forEachPredecessor(Fn F) const;
  /// Invokes \p F on every dependent node. Defined in DepGraph.h.
  template <typename Fn> void forEachSuccessor(Fn F) const;

  /// Debug label used in dumps and diagnostics.
  const std::string &name() const { return DebugName; }
  void setName(std::string Name) { DebugName = std::move(Name); }

  /// Pins this node's partition (and every partition it later merges
  /// with) to the calling thread: the parallel scheduler never hands
  /// serial-tagged partitions to pool workers. Used by nodes whose
  /// recompute touches shared non-graph state (e.g. the interpreter's
  /// output stream and heap), where thread affinity — not just mutual
  /// exclusion — preserves deterministic observable order.
  ///
  /// The pin is per-node and counted at the partition level: when the
  /// last pinned node of a partition is destroyed, the partition reverts
  /// to parallel eligibility (it does not stay serial-affine forever).
  /// Idempotent per node.
  void requireSerialEval();

  /// True if this node itself holds a serial pin (requireSerialEval was
  /// called on it). The partition may be serial-affine because of *other*
  /// pinned nodes even when this is false.
  bool isSerialPinned() const { return SerialPinned; }

  /// Evaluator hook for Storage nodes: reconcile the cached snapshot with
  /// the live storage value. \returns true if they differed (the change is
  /// real and must propagate), false for quiescence (the mutator wrote the
  /// old value back, Algorithm 4 / experiment E11).
  virtual bool refreshStorage() {
    assert(false && "refreshStorage() on a non-storage node");
    return true;
  }

  /// Evaluator hook for Eager procedure nodes: re-execute the procedure
  /// through the full incremental call protocol. \returns true if the
  /// cached value changed (dependents must be notified).
  virtual bool reexecute() {
    assert(false && "reexecute() on a non-eager-procedure node");
    return true;
  }

private:
  friend class GraphStore;
  friend class GraphPolicy;
  friend class DepGraph;
  friend class InconsistentSet;
  friend class PropagationScheduler;
  friend class GraphCheckpoint;
  friend class GraphRestorer;

  NodeKind Kind;
  EvalStrategy Strategy;
  bool Consistent = false;
  bool InQueue = false;
  bool Executing = false;
  bool Quarantined = false;
  /// This node holds a serial pin on its partition (see
  /// requireSerialEval()); the pin is released when the node is
  /// unregistered.
  bool SerialPinned = false;
  /// A dependent recorded an edge from this node while it was executing
  /// (a re-entrant read): the dependent captured this node's *transient*
  /// level, so the usual stamp/level ordering need not hold on those
  /// edges. Cleared at the next execution. Scheduling-heuristic
  /// bookkeeping only — never journaled.
  bool ReadMidExecution = false;
  uint32_t Level = 0;
  /// Re-entrant conventional runs currently stacked on this instance.
  uint32_t ReentrantDepth = 0;
  /// Times the evaluator re-executed this node during the propagation
  /// stamped by ReexecEpoch (divergence accounting).
  uint32_t ReexecCount = 0;
  uint64_t ReexecEpoch = 0;
  /// Heap position within the owning inconsistent set (valid iff InQueue).
  uint32_t QueuePos = 0;
  /// Union-find element id in the partition manager (Section 6.3).
  uint32_t Partition = 0;
  /// Stamp of this node's current/most recent execution (as a dependent).
  uint64_t ExecStamp = 0;
  /// Value-version stamp (see version()).
  uint64_t Version = 0;
  /// Governor wave-sequence stamp of the cancelled wave that marked this
  /// node stale (0 = fresh; see isStale()).
  uint64_t StaleSince = 0;
  /// Watchdog strikes: single evaluations of this node that each consumed
  /// an entire wave deadline (quarantined at Config::WatchdogTrips).
  uint32_t DeadlineBlows = 0;
  /// As a dependency source: the sink/stamp of the most recent edge created
  /// from this node, used to skip duplicate edges when one execution reads
  /// the same location repeatedly.
  uint64_t DedupStamp = 0;
  NodeId DedupSink;
  /// This node's slot in the graph's node table (see id()).
  NodeId Id;
  EdgeId FirstPred;
  EdgeId FirstSucc;
  DepGraph *Graph = nullptr;
  std::string DebugName;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_DEPNODE_H
