//===- GraphStore.h - Dense slab storage for the graph ----------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage layer of the dependency-graph engine (DESIGN.md "Engine
/// layering and handle-based storage"). GraphStore owns the dense
/// generation-checked node and edge tables, the raw doubly-linked edge
/// lists (Section 9.2's O(1) edge removal), the live counts, the engine
/// configuration, and the wave-time state lock. It knows nothing about
/// pending sets, partitions, quarantine, transactions, or evaluation —
/// those live in the layers stacked on top (GraphPolicy, DepGraph).
///
/// Layering (each layer sees only the ones below it):
///
///   GraphStore   — node/edge slabs, edge linkage, config, stats, lock
///      ^
///   GraphPolicy  — partitions, pending sets, quarantine, undo journal,
///      ^            wave ownership
///   DepGraph     — change propagation, execution protocol, transaction
///                  drivers, scheduler integration, audits (the façade
///                  clients program against)
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_GRAPHSTORE_H
#define ALPHONSE_GRAPH_GRAPHSTORE_H

#include "graph/DepNode.h"
#include "support/Diagnostics.h"
#include "support/Pool.h"
#include "support/Statistics.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace alphonse {

class PropagationScheduler;
class ThreadPool;

/// Engine tunables; the defaults match the paper, the flags exist for the
/// ablation experiments in DESIGN.md Section 5. (DepGraph::Config is an
/// alias of this, so clients keep writing DepGraph::Config.)
struct GraphConfig {
  /// Keep one inconsistent set per union-find partition (Section 6.3) so
  /// that changes in unrelated structures do not force evaluation.
  bool Partitioning = true;
  /// Suppress propagation from storage whose live value equals the cached
  /// snapshot (Algorithm 4's value comparison; experiment E11).
  bool VariableCutoff = true;
  /// Skip duplicate edges created by one execution reading one location
  /// repeatedly.
  bool DedupEdges = true;
  /// Run verify() after every top-level evaluation and record any
  /// invariant violation in diagnostics() (debugging/testing aid).
  /// Toggleable at runtime via the ALPHONSE_AUDIT environment variable
  /// (honored by Runtime construction, not by the graph itself).
  bool AuditAfterEvaluate = false;
  /// Run verify() after every transactional rollback and record any
  /// invariant violation in diagnostics(). Rollback claims to restore
  /// the exact pre-batch quiescent state; this audits the claim.
  bool VerifyOnRollback = true;
  /// Abort a propagation after this many evaluator steps (0 = unlimited).
  /// The node being processed when the limit trips is quarantined with a
  /// StepLimit fault and the remaining pending work is left queued for a
  /// later pump. A global backstop behind the per-node limits below; the
  /// generous default only fires on runaway DET-violating programs.
  uint64_t EvalStepLimit = 10'000'000;
  /// Quarantine a node re-executed more than this many times within one
  /// propagation (0 = unlimited): a DET-violating procedure that keeps
  /// invalidating itself would otherwise loop forever.
  uint32_t MaxReexecutions = 100'000;
  /// Quarantine an instance whose re-entrant (in-flight) call chain
  /// nests deeper than this (0 = unlimited): a dependency cycle demands
  /// its own value while computing it and would otherwise recurse until
  /// stack overflow. Legitimate re-entrancy (Algorithm 11's balance)
  /// nests only a few frames.
  uint32_t MaxReentrantDepth = 64;
  /// Worker threads for top-level quiescence propagation (0 = serial,
  /// the default; behavior is then byte-identical to the pre-parallel
  /// evaluator). Requires Partitioning; waves run only when at least
  /// two independent partitions have pending work. Capped by the
  /// process-wide shard budget (kStatShards - 1).
  unsigned Workers = 0;
  /// Externally owned worker pool for parallel propagation. When set, the
  /// scheduler dispatches waves onto this pool instead of creating its
  /// own Workers-sized pool — many embedded graphs (the session service,
  /// DESIGN.md Section 12) then share one fixed set of threads. The pool
  /// must outlive the graph; Workers still gates whether parallel waves
  /// run at all (0 keeps propagation serial even with a pool attached).
  ThreadPool *Pool = nullptr;
  /// Watchdog: quarantine a node (FaultKind::Deadline) after this many
  /// single evaluations that each consumed an entire wave deadline by
  /// themselves (0 = never). Only armed while a deadline-budgeted wave is
  /// running; keeps one pathological node from starving every governed
  /// wave (DESIGN.md Section 11).
  uint32_t WatchdogTrips = 3;
  /// Base delay for the capped exponential backoff (with jitter) the
  /// scheduler inserts between consecutive conflicted parallel waves, in
  /// microseconds (0 = no backoff).
  uint64_t RetryBackoffBaseUs = 50;
  /// Ceiling for the conflicted-retry backoff delay, in microseconds.
  uint64_t RetryBackoffCapUs = 2000;
};

/// Dense node table: NodeId -> DepNode* with per-slot generations.
///
/// The graph does not own node objects (the typed layers do); the table
/// holds back-pointers so handles resolve in two indexed loads. Slots are
/// recycled through a free list; freeing bumps the slot's generation, so
/// a handle kept across the free stops matching (stale-handle trap).
class NodeTable {
public:
  /// Claims a slot for \p N and returns its handle.
  NodeId alloc(DepNode &N) {
    uint32_t Index;
    if (!Free.empty()) {
      Index = Free.back();
      Free.pop_back();
    } else {
      Index = Slots.push();
      uint32_t GenIndex = Gens.push();
      (void)GenIndex;
      assert(GenIndex == Index && "node slabs out of lockstep");
      assert(Index <= NodeId::MaxIndex && "node table exhausted (2^24 slots)");
      Gens[Index] = NodeId::FirstGen;
    }
    Slots[Index] = &N;
    return NodeId::make(Index, Gens[Index]);
  }

  /// Releases \p Id's slot and advances its generation.
  void free(NodeId Id) {
    assert(isLive(Id) && "freeing a stale or null NodeId");
    uint32_t Index = Id.index();
    Slots[Index] = nullptr;
    Gens[Index] = NodeId::nextGen(Gens[Index]);
    Free.push_back(Index);
  }

  /// Pre-grows the table by \p N slots, parking them on the free list so
  /// the next \p N alloc() calls are free-list pops with no slab growth
  /// (static graph construction, DESIGN.md §14). Writer-side only, like
  /// alloc().
  void reserve(size_t N) {
    for (size_t I = 0; I < N; ++I) {
      uint32_t Index = Slots.push();
      uint32_t GenIndex = Gens.push();
      (void)GenIndex;
      assert(GenIndex == Index && "node slabs out of lockstep");
      assert(Index <= NodeId::MaxIndex && "node table exhausted (2^24 slots)");
      Gens[Index] = NodeId::FirstGen;
      Free.push_back(Index);
    }
  }

  /// Slots currently parked on the free list.
  size_t numFree() const { return Free.size(); }

  /// True when \p Id names a currently allocated slot of its generation.
  bool isLive(NodeId Id) const {
    return Id && Id.index() < Slots.size() && Gens[Id.index()] == Id.gen() &&
           Slots[Id.index()] != nullptr;
  }

  /// Resolves a live handle; asserts (debug) on stale or null handles.
  DepNode &node(NodeId Id) const {
    assert(isLive(Id) && "resolving a stale or null NodeId");
    return *Slots[Id.index()];
  }

  /// Resolves \p Id, or nullptr when it is null, freed, or stale.
  DepNode *tryNode(NodeId Id) const {
    return isLive(Id) ? Slots[Id.index()] : nullptr;
  }

  /// One past the highest index ever allocated (for table scans).
  uint32_t span() const { return Slots.size(); }
  /// The occupant of slot \p Index, or nullptr for a free slot.
  DepNode *at(uint32_t Index) const { return Slots[Index]; }

  /// Bytes reserved by the table's slabs and free list.
  size_t bytesReserved() const {
    return Slots.bytesReserved() + Gens.bytesReserved() +
           Free.capacity() * sizeof(uint32_t);
  }

private:
  Slab<DepNode *> Slots;
  Slab<uint8_t> Gens;
  std::vector<uint32_t> Free;
};

/// Dense edge table: EdgeId -> Edge with per-slot generations.
///
/// Edges are graph-owned values living directly in the slab (24 bytes
/// each); allocation recycles freed slots through a free list, replacing
/// the pointer-returning Pool<Edge> of the pre-handle engine.
class EdgeTable {
public:
  /// Claims a slot and returns its handle. Sets \p Reused when the slot
  /// came from the free list; a reused slot keeps its dead contents
  /// (linkEdge writes every field, so clearing here would be wasted work
  /// on the hottest allocation path in the engine).
  EdgeId alloc(bool &Reused) {
    uint32_t Index;
    Reused = !Free.empty();
    if (Reused) {
      Index = Free.back();
      Free.pop_back();
    } else {
      Index = Slots.push();
      uint32_t GenIndex = Gens.push();
      (void)GenIndex;
      assert(GenIndex == Index && "edge slabs out of lockstep");
      assert(Index <= EdgeId::MaxIndex && "edge table exhausted (2^24 slots)");
      Gens[Index] = EdgeId::FirstGen;
    }
    return EdgeId::make(Index, Gens[Index]);
  }

  /// Releases \p Id's slot and advances its generation.
  void free(EdgeId Id) {
    assert(isLive(Id) && "freeing a stale or null EdgeId");
    uint32_t Index = Id.index();
    Gens[Index] = EdgeId::nextGen(Gens[Index]);
    Free.push_back(Index);
  }

  /// Pre-grows the table by \p N slots, parking them on the free list (see
  /// NodeTable::reserve).
  void reserve(size_t N) {
    for (size_t I = 0; I < N; ++I) {
      uint32_t Index = Slots.push();
      uint32_t GenIndex = Gens.push();
      (void)GenIndex;
      assert(GenIndex == Index && "edge slabs out of lockstep");
      assert(Index <= EdgeId::MaxIndex && "edge table exhausted (2^24 slots)");
      Gens[Index] = EdgeId::FirstGen;
      Free.push_back(Index);
    }
  }

  /// Slots currently parked on the free list.
  size_t numFree() const { return Free.size(); }

  bool isLive(EdgeId Id) const {
    return Id && Id.index() < Slots.size() && Gens[Id.index()] == Id.gen();
  }

  Edge &edge(EdgeId Id) {
    assert(isLive(Id) && "resolving a stale or null EdgeId");
    return Slots[Id.index()];
  }
  const Edge &edge(EdgeId Id) const {
    assert(isLive(Id) && "resolving a stale or null EdgeId");
    return Slots[Id.index()];
  }

  size_t bytesReserved() const {
    return Slots.bytesReserved() + Gens.bytesReserved() +
           Free.capacity() * sizeof(uint32_t);
  }

private:
  Slab<Edge> Slots;
  Slab<uint8_t> Gens;
  std::vector<uint32_t> Free;
};

/// Storage layer: slab-backed node/edge tables plus raw edge linkage.
class GraphStore {
public:
  using Config = GraphConfig;

  explicit GraphStore(Statistics &Stats);
  GraphStore(Statistics &Stats, GraphConfig Cfg);

  GraphStore(const GraphStore &) = delete;
  GraphStore &operator=(const GraphStore &) = delete;

  const GraphConfig &config() const { return Cfg; }
  Statistics &stats() { return Stats; }

  /// Number of nodes currently registered.
  size_t numLiveNodes() const { return NumLiveNodes; }
  /// Number of edges currently linked.
  size_t numLiveEdges() const { return NumLiveEdges; }

  /// Resolves a live node handle (debug-asserts on stale/null handles).
  DepNode &node(NodeId Id) const { return NodeTab.node(Id); }
  /// Resolves a node handle, or nullptr when null, freed, or stale.
  DepNode *tryNode(NodeId Id) const { return NodeTab.tryNode(Id); }
  /// True when \p Id resolves to a live node of its generation.
  bool isLiveNode(NodeId Id) const { return NodeTab.isLive(Id); }

  Edge &edge(EdgeId Id) { return EdgeTab.edge(Id); }
  const Edge &edge(EdgeId Id) const { return EdgeTab.edge(Id); }
  bool isLiveEdge(EdgeId Id) const { return EdgeTab.isLive(Id); }

  /// Bytes reserved by the node table (slabs + free list): the
  /// graph.node_bytes statistic.
  size_t nodeSlabBytes() const { return NodeTab.bytesReserved(); }
  /// Bytes reserved by the edge table: the graph.edge_bytes statistic.
  size_t edgeSlabBytes() const { return EdgeTab.bytesReserved(); }

  size_t numPredecessors(const DepNode &N) const;
  size_t numSuccessors(const DepNode &N) const;

  /// Bulk pre-reservation for static graph construction (paper §6.2,
  /// DESIGN.md §14): grows the node and edge tables by \p Nodes / \p Edges
  /// slots in one step, parking the new slots on the free lists, so the
  /// instantiation (and the steady-state churn that follows it) is served
  /// entirely by free-list pops — zero slab growth, directly assertable
  /// via the pool.high_water gauge. Publishes the memory gauges once.
  void reserveShape(size_t Nodes, size_t Edges);

  /// Free node-table slots available before the next slab growth.
  size_t nodeSlotsFree() const { return NodeTab.numFree(); }
  /// Free edge-table slots available before the next slab growth.
  size_t edgeSlotsFree() const { return EdgeTab.numFree(); }

  /// Unconditionally re-publishes graph.node_bytes / graph.edge_bytes /
  /// pool.high_water from the tables' current reservations. The growth
  /// hooks only publish when a slab actually grows, so embeddings that
  /// swap table contents wholesale (checkpoint restore, batch rollback)
  /// call this to keep the gauges from going stale until the next growth.
  void republishMemoryGauges();

  /// Rebases the pool.high_water mark to the tables' current combined
  /// reservation (and re-publishes all three gauges), so a bench can
  /// scope the mark to a churn phase: reset after warm-up, then assert
  /// the gauge stayed flat.
  void resetHighWater();

  /// RAII conditional lock over the graph's shared bookkeeping (pending
  /// sets, union-find, edge tables, journal, quarantine). On the serial
  /// path it costs one atomic load and takes no lock, so Workers = 0 is
  /// byte-identical to the pre-parallel evaluator; during a wave it
  /// holds the graph's recursive state mutex.
  class StateGuard {
  public:
    explicit StateGuard(const GraphStore &G) : G(G) {
      if (G.ParallelOn.load(std::memory_order_acquire)) {
        G.StateMu.lock();
        Locked = true;
      }
    }
    ~StateGuard() {
      if (Locked)
        G.StateMu.unlock();
    }
    StateGuard(const StateGuard &) = delete;
    StateGuard &operator=(const StateGuard &) = delete;

  private:
    const GraphStore &G;
    bool Locked = false;
  };

protected:
  friend class DepNode;
  friend class PropagationScheduler;
  friend class GraphCheckpoint;
  friend class GraphRestorer;

  /// Claims a node-table slot for \p N (memory gauges refreshed).
  NodeId allocNodeSlot(DepNode &N);
  void freeNodeSlot(NodeId Id);

  /// Claims an edge slot (EdgeReuse counted, gauges refreshed on growth).
  /// Inline: edge alloc/free/link/unlink sit on the re-execution fast
  /// path (every run retracts and re-records the referenced-argument
  /// set), so they must fold into their callers across the layer split.
  EdgeId allocEdge() {
    bool Reused = false;
    EdgeId Id = EdgeTab.alloc(Reused);
    if (Reused)
      ++Stats.EdgeReuse;
    else if (EdgeTab.bytesReserved() != LastEdgeBytes)
      refreshMemoryGauges();
    return Id;
  }
  void freeEdgeSlot(EdgeId Id) { EdgeTab.free(Id); }

  /// Pushes edge \p Id onto the front of \p Source's successor list and
  /// \p Sink's predecessor list, setting every edge field.
  void linkEdge(EdgeId Id, DepNode &Source, DepNode &Sink) {
    Edge &E = EdgeTab.edge(Id);
    E.Source = Source.Id;
    E.Sink = Sink.Id;
    // Push onto the source's successor list.
    E.NextSucc = Source.FirstSucc;
    E.PrevSucc = EdgeId();
    if (Source.FirstSucc)
      EdgeTab.edge(Source.FirstSucc).PrevSucc = Id;
    Source.FirstSucc = Id;
    // Push onto the sink's predecessor list.
    E.NextPred = Sink.FirstPred;
    E.PrevPred = EdgeId();
    if (Sink.FirstPred)
      EdgeTab.edge(Sink.FirstPred).PrevPred = Id;
    Sink.FirstPred = Id;
  }

  /// Detaches edge \p Id from both intrusive lists (slot not freed).
  void unlinkEdge(EdgeId Id) {
    Edge &E = EdgeTab.edge(Id);
    // Successor list of the source.
    if (E.PrevSucc)
      EdgeTab.edge(E.PrevSucc).NextSucc = E.NextSucc;
    else
      NodeTab.node(E.Source).FirstSucc = E.NextSucc;
    if (E.NextSucc)
      EdgeTab.edge(E.NextSucc).PrevSucc = E.PrevSucc;
    // Predecessor list of the sink.
    if (E.PrevPred)
      EdgeTab.edge(E.PrevPred).NextPred = E.NextPred;
    else
      NodeTab.node(E.Sink).FirstPred = E.NextPred;
    if (E.NextPred)
      EdgeTab.edge(E.NextPred).PrevPred = E.PrevPred;
  }

  /// Re-publishes graph.node_bytes / graph.edge_bytes / pool.high_water
  /// when a table's reservation changed (called on growth, not per alloc).
  void refreshMemoryGauges();

  Statistics &Stats;
  GraphConfig Cfg;
  DiagnosticEngine Diags;

  NodeTable NodeTab;
  EdgeTable EdgeTab;

  size_t NumLiveNodes = 0;
  size_t NumLiveEdges = 0;

  /// Last-published table reservations (gauge refresh cheap-out).
  size_t LastNodeBytes = 0;
  size_t LastEdgeBytes = 0;
  /// Peak combined table reservation (pool.high_water).
  size_t HighWaterBytes = 0;

  /// Guards the shared bookkeeping during waves. Recursive because
  /// guarded operations nest (e.g. addDependency inside a guarded
  /// execution prologue).
  mutable std::recursive_mutex StateMu;
  /// True only while a parallel wave is in flight; gates StateGuard.
  std::atomic<bool> ParallelOn{false};
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_GRAPHSTORE_H
