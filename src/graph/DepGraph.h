//===- DepGraph.h - Dynamic dependency graph --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The propagation layer and public façade of the dependency-graph engine
/// (Sections 4 and 6.3 of the paper; DESIGN.md "Engine layering and
/// handle-based storage"). DepGraph adds the evaluation routine of
/// Section 4.5, the execution protocol, the transaction drivers, the
/// parallel scheduler integration, and the invariant audit on top of the
/// policy layer (GraphPolicy: partitions, pending sets, quarantine,
/// journal) which itself sits on the storage layer (GraphStore: dense
/// node/edge slabs). Nodes are owned by the typed layer (Cell /
/// Maintained / interpreter objects) and register themselves.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_DEPGRAPH_H
#define ALPHONSE_GRAPH_DEPGRAPH_H

#include "graph/GraphPolicy.h"
#include "graph/Governor.h"
#include "support/Budget.h"
#include "support/FaultInfo.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace alphonse {

class PropagationScheduler;

/// The dependency graph plus its evaluator.
///
/// All mutation goes through the graph so that bookkeeping (statistics,
/// partitions, pending sets) stays coherent. By default execution is
/// single-threaded, matching the paper's execution model; with
/// Config::Workers > 0 top-level propagation drains independent
/// partitions concurrently (DESIGN.md "Parallel propagation") while all
/// mutator-side entry points remain single-threaded.
class DepGraph : public GraphPolicy {
public:
  /// Engine tunables (see GraphConfig in GraphStore.h).
  using Config = GraphConfig;

  explicit DepGraph(Statistics &Stats);
  DepGraph(Statistics &Stats, Config Cfg);
  ~DepGraph();

  /// True if the evaluator is currently draining inconsistent sets.
  bool isEvaluating() const { return EvalDepth != 0; }

  /// Records that \p Sink depends on \p Source and unites their partitions.
  /// Duplicate edges within Sink's current execution are skipped when
  /// Config::DedupEdges is set. Also raises Sink's level above Source's.
  void addDependency(DepNode &Sink, DepNode &Source);

  /// Detaches every predecessor edge of \p Sink (Algorithm 5's
  /// RemovePredEdges, run before re-executing a procedure so the new
  /// execution records a fresh referenced-argument set R(p)).
  void removePredEdges(DepNode &Sink);

  /// Marks the start of an execution of procedure node \p Proc: sets
  /// consistent(Proc) (Algorithm 5), clears its level, stamps it for edge
  /// dedup, and flags it as executing.
  void beginExecution(DepNode &Proc);

  /// Marks the end of the current execution of \p Proc. If the node was
  /// invalidated while it ran (e.g. it wrote storage it also reads), it
  /// stays inconsistent and is left queued for a later round.
  void endExecution(DepNode &Proc);

  /// Drains the inconsistent set of \p N's partition, processing each node
  /// per Section 4.5. Reentrant: procedure executions triggered from inside
  /// may call back into the evaluator.
  void evaluateFor(DepNode &N);

  /// Drains every partition's inconsistent set. With Config::Workers > 0
  /// (and partitioning on, no batch open, top-level entry) independent
  /// partitions are drained concurrently by the propagation scheduler;
  /// otherwise this is the classic serial drain. Governed by the
  /// Governor's default budget (unlimited unless configured).
  void evaluateAll() { evaluateAll(Gov.defaultBudget()); }

  /// Budgeted quiescence propagation (DESIGN.md Section 11): drains
  /// pending work under \p B's wall-clock deadline / evaluation-step
  /// budget / slab-memory ceiling. When a bound is exhausted mid-wave,
  /// every drain loop is cooperatively cancelled at the next evaluation
  /// boundary; the residual inconsistent sets stay parked (resumable by
  /// any later pump), the unrepaired cone is stamped stale
  /// (DepNode::isStale()), and the degraded outcome is returned. With an
  /// unlimited budget this is the classic run-to-quiescence wave and
  /// always returns Completed. Under an open batch a degraded outcome is
  /// surfaced by commitBatch() as an abort instead (no stale values ever
  /// escape a transaction).
  WaveOutcome evaluateAll(const WaveBudget &B);

  /// Budget applied by the zero-argument evaluateAll() — i.e. by every
  /// pump the embedding layers issue without an explicit budget.
  /// Unlimited by default.
  void setDefaultBudget(const WaveBudget &B) { Gov.setDefaultBudget(B); }

  /// The graph's resource governor (budgets, cancellation, staleness).
  Governor &governor() { return Gov; }
  const Governor &governor() const { return Gov; }

  //===--------------------------------------------------------------------===//
  // Transactional mutation batches — see DESIGN.md "Transactions and
  // recovery". Batches do not nest. (The journaling primitives — inBatch,
  // epoch, logUndo, abortFault — live in GraphPolicy; the drivers are
  // here because committing runs the evaluator.)
  //===--------------------------------------------------------------------===//

  /// Opens a batch. The graph should be quiescent (numPending() == 0);
  /// callers normally pump first (Runtime::beginBatch does). Must not be
  /// called while the evaluator is draining, and batches do not nest.
  void beginBatch();

  /// Runs quiescence propagation (evaluateAll) for the batch. If any node
  /// faulted during the batch or the propagation — exception, divergence,
  /// cycle, step limit — the whole batch is rolled back to the pre-batch
  /// state and this returns false (abortFault() tells why). On success
  /// the journal is discarded, the epoch advances, and this returns true.
  bool commitBatch();

  /// Replays the undo journal in reverse, restoring the pre-batch
  /// quiescent state: storage snapshots, cached values, edges, levels,
  /// execution stamps, versions, quarantine membership, and pending sets
  /// (cleared — the pre-batch state was quiescent). Audited by verify()
  /// under Config::VerifyOnRollback.
  void rollbackBatch();

  /// Opens a bounded re-entrant (conventional) run of the in-flight
  /// instance \p N. Throws CycleError when Config::MaxReentrantDepth is
  /// exceeded — the generic in-flight dependency-cycle detector.
  void beginReentrant(DepNode &N);
  void endReentrant(DepNode &N);

  /// Flags the executing node \p Proc inconsistent mid-run, as if it wrote
  /// storage it reads (endExecution then re-queues eager nodes). Used by
  /// the fault-injection harness to force divergence.
  void selfInvalidate(DepNode &Proc);

  /// Storage-write fast path for a node nothing depends on: when \p N is
  /// storage with no successor edges (and not quarantined), folds the
  /// pending change into its snapshot in place — refreshStorage plus the
  /// version stamp processNode would apply, minus the queue round-trip
  /// that would propagate to no one. Returns false (caller must
  /// markInconsistent as usual) when the node has dependents. Keeps
  /// pre-instantiated static slot nodes (DESIGN.md §14) from parking
  /// pending work for locations no incremental procedure ever reads;
  /// under dynamic construction such a node would not exist yet.
  bool settleUnobservedWrite(DepNode &N);

  /// Bulk raw edge linkage: links every Source -> Sink edge in \p Sources
  /// order under one StateGuard, with rollback-grade bookkeeping only (no
  /// level recompute or dedup; partition unions are a sound over-merge).
  /// \p Sources arrive front-to-back (capture order); linkage is
  /// push-front, so this walks them in reverse to recover the original
  /// predecessor-list order. Checkpoint restore and static-shape
  /// instantiation (DESIGN.md §14) wire whole adjacency rows through here
  /// instead of per-edge calls.
  void relinkPredecessors(DepNode &Sink, const std::vector<DepNode *> &Sources);

  /// Invariant audit over the whole graph: live node/edge counts, table
  /// generations, edge linkage, level monotonicity across up-to-date
  /// edges, pending-set and partition agreement, and quarantine
  /// disjointness. \returns one message per violation (empty = healthy).
  /// Runnable any time the evaluator is not mid-step; also wired to
  /// Config::AuditAfterEvaluate.
  std::vector<std::string> verify() const;

private:
  friend class DepNode;
  friend class PropagationScheduler;
  friend class GraphCheckpoint;
  friend class GraphRestorer;

  void registerNode(DepNode &N);
  void unregisterNode(DepNode &N);

  /// Processes one popped node per the Section 4.5 case analysis. Never
  /// throws: a failing recompute quarantines the node and the drain
  /// continues with the partition's remaining pending work.
  void processNode(DepNode &N);

  /// True when the per-propagation divergence counter of \p N trips
  /// Config::MaxReexecutions (counter is maintained here).
  bool tripsReexecutionLimit(DepNode &N);

  /// The pre-parallel top-level drain loop: drains every partition's
  /// pending set on the calling thread. evaluateAll() delegates here
  /// directly when Workers == 0, and the scheduler uses it as the
  /// serial-affinity path and the post-wave mop-up.
  void evaluateAllSerial();

  /// Cooperative-cancellation poll, called by every drain loop before
  /// popping its next node. Free when the current wave is unbudgeted
  /// (one bool); otherwise runs the governor's boundary check against
  /// the live step counter and slab gauges.
  bool governorStop() {
    if (!Gov.checksOn())
      return false;
    return Gov.cancelled() ||
           Gov.checkBoundary(EvalSteps.load(std::memory_order_relaxed),
                             LastNodeBytes + LastEdgeBytes);
  }

  /// After a cancelled wave: stamps every still-pending node and its
  /// transitive successor cone stale (readers of those values get the
  /// last-quiescent snapshot, flagged via DepNode::isStale()).
  void stampStaleResidue();
  /// After a wave reaches full quiescence: clears every stale mark.
  void clearStaleMarks();

  void applyUndo(UndoEntry &E);
  /// Recreates one edge raw during rollback: links only, no level /
  /// partition / dedup bookkeeping (levels and stamps are restored by
  /// ExecSnapshot entries; partition unions are a sound over-merge).
  void relinkEdge(DepNode &Source, DepNode &Sink);
  /// Unlinks one Source -> Sink edge during rollback (no-op if none
  /// remains, e.g. the sink re-executed later in the batch).
  void unlinkOneEdge(DepNode &Source, DepNode &Sink);

  /// Source of DepNode::Version stamps; monotonic, never rolled back.
  /// Atomic because wave workers stamp executions concurrently; the
  /// serial instruction sequence is unchanged.
  std::atomic<uint64_t> VersionCounter{0};
  /// Source of DepNode::ExecStamp (atomic for wave workers, as above).
  std::atomic<uint64_t> StampCounter{0};
  std::atomic<uint64_t> EvalSteps{0};
  /// Stamp of the current top-level propagation (divergence counters are
  /// scoped to one epoch).
  uint64_t EvalEpoch = 0;
  int EvalDepth = 0;
  /// Set when EvalStepLimit trips; every drain loop unwinds, leaving the
  /// remaining pending work queued. Cleared at the next top-level entry.
  std::atomic<bool> DrainAborted{false};

  /// Worker pool + wave driver; created lazily on the first parallel
  /// evaluateAll() with Workers > 0.
  std::unique_ptr<PropagationScheduler> Scheduler;

  /// Resource governance: wave budgets, the cancel latch, staleness and
  /// parked-residue bookkeeping (DESIGN.md Section 11).
  Governor Gov;
};

/// RAII pair for beginExecution/endExecution: the execution protocol is
/// correctly closed even when the procedure body throws, so a failing
/// recompute unwinds with the graph's flags and queues coherent.
class ExecutionScope {
public:
  ExecutionScope(DepGraph &G, DepNode &Proc) : G(G), Proc(Proc) {
    G.beginExecution(Proc);
  }
  ~ExecutionScope() { G.endExecution(Proc); }

  ExecutionScope(const ExecutionScope &) = delete;
  ExecutionScope &operator=(const ExecutionScope &) = delete;

private:
  DepGraph &G;
  DepNode &Proc;
};

/// RAII pair for beginReentrant/endReentrant around a re-entrant
/// (conventional) run of an in-flight instance. The constructor throws
/// CycleError when the nesting exceeds Config::MaxReentrantDepth.
class ReentrantScope {
public:
  ReentrantScope(DepGraph &G, DepNode &Proc) : G(G), Proc(Proc) {
    G.beginReentrant(Proc); // May throw; the destructor then never runs.
  }
  ~ReentrantScope() { G.endReentrant(Proc); }

  ReentrantScope(const ReentrantScope &) = delete;
  ReentrantScope &operator=(const ReentrantScope &) = delete;

private:
  DepGraph &G;
  DepNode &Proc;
};

//===----------------------------------------------------------------------===//
// DepNode edge walks (declared in DepNode.h; the EdgeId chains resolve
// through the graph's edge table, so DepGraph must be complete here).
//===----------------------------------------------------------------------===//

template <typename Fn> void DepNode::forEachPredecessor(Fn F) const {
  assert(Graph && "node not attached to a graph");
  for (EdgeId E = FirstPred; E;) {
    const Edge &Ed = Graph->edge(E);
    F(Graph->node(Ed.Source));
    E = Ed.NextPred;
  }
}

template <typename Fn> void DepNode::forEachSuccessor(Fn F) const {
  assert(Graph && "node not attached to a graph");
  for (EdgeId E = FirstSucc; E;) {
    const Edge &Ed = Graph->edge(E);
    F(Graph->node(Ed.Sink));
    E = Ed.NextSucc;
  }
}

} // namespace alphonse

#endif // ALPHONSE_GRAPH_DEPGRAPH_H
