//===- DepGraph.h - Dynamic dependency graph --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic dependency graph and change-propagation evaluator of
/// Sections 4 and 6.3 of the paper. DepGraph owns edges (pooled), the
/// union-find partition manager with one inconsistent set per partition,
/// and the evaluation routine of Section 4.5. Nodes are owned by the typed
/// layer (Cell / Maintained / interpreter objects) and register themselves.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_DEPGRAPH_H
#define ALPHONSE_GRAPH_DEPGRAPH_H

#include "graph/DepNode.h"
#include "graph/InconsistentSet.h"
#include "graph/UndoLog.h"
#include "support/Diagnostics.h"
#include "support/FaultInfo.h"
#include "support/Pool.h"
#include "support/Statistics.h"
#include "support/UnionFind.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace alphonse {

class PropagationScheduler;

/// Internal control-flow signal of the parallel scheduler: an execution on
/// a wave worker touched a partition owned by a sibling drain task. The
/// two partitions are united, ownership of the merged partition is handed
/// to exactly one task, and the abandoned execution is left inconsistent
/// so the surviving owner (or the post-wave serial mop-up) retries it.
/// Deliberately not a FaultInfo: a conflict is a scheduling event, never a
/// program fault, and must not quarantine anything.
struct RetryConflict {};

namespace detail {
/// The drain-task id of the calling thread (0 = not a wave worker).
uint32_t &currentDrainTask();
} // namespace detail

/// The dependency graph plus its evaluator.
///
/// All mutation goes through the graph so that bookkeeping (statistics,
/// partitions, pending sets) stays coherent. By default execution is
/// single-threaded, matching the paper's execution model; with
/// Config::Workers > 0 top-level propagation drains independent
/// partitions concurrently (DESIGN.md "Parallel propagation") while all
/// mutator-side entry points remain single-threaded.
class DepGraph {
public:
  /// Tunables; the defaults match the paper, the flags exist for the
  /// ablation experiments in DESIGN.md Section 5.
  struct Config {
    /// Keep one inconsistent set per union-find partition (Section 6.3) so
    /// that changes in unrelated structures do not force evaluation.
    bool Partitioning = true;
    /// Suppress propagation from storage whose live value equals the cached
    /// snapshot (Algorithm 4's value comparison; experiment E11).
    bool VariableCutoff = true;
    /// Skip duplicate edges created by one execution reading one location
    /// repeatedly.
    bool DedupEdges = true;
    /// Run verify() after every top-level evaluation and record any
    /// invariant violation in diagnostics() (debugging/testing aid).
    /// Toggleable at runtime via the ALPHONSE_AUDIT environment variable
    /// (honored by Runtime construction, not by DepGraph itself).
    bool AuditAfterEvaluate = false;
    /// Run verify() after every transactional rollback and record any
    /// invariant violation in diagnostics(). Rollback claims to restore
    /// the exact pre-batch quiescent state; this audits the claim.
    bool VerifyOnRollback = true;
    /// Abort a propagation after this many evaluator steps (0 = unlimited).
    /// The node being processed when the limit trips is quarantined with a
    /// StepLimit fault and the remaining pending work is left queued for a
    /// later pump. A global backstop behind the per-node limits below; the
    /// generous default only fires on runaway DET-violating programs.
    uint64_t EvalStepLimit = 10'000'000;
    /// Quarantine a node re-executed more than this many times within one
    /// propagation (0 = unlimited): a DET-violating procedure that keeps
    /// invalidating itself would otherwise loop forever.
    uint32_t MaxReexecutions = 100'000;
    /// Quarantine an instance whose re-entrant (in-flight) call chain
    /// nests deeper than this (0 = unlimited): a dependency cycle demands
    /// its own value while computing it and would otherwise recurse until
    /// stack overflow. Legitimate re-entrancy (Algorithm 11's balance)
    /// nests only a few frames.
    uint32_t MaxReentrantDepth = 64;
    /// Worker threads for top-level quiescence propagation (0 = serial,
    /// the default; behavior is then byte-identical to the pre-parallel
    /// evaluator). Requires Partitioning; waves run only when at least
    /// two independent partitions have pending work. Capped by the
    /// process-wide shard budget (kStatShards - 1).
    unsigned Workers = 0;
  };

  explicit DepGraph(Statistics &Stats);
  DepGraph(Statistics &Stats, Config Cfg);
  ~DepGraph();

  DepGraph(const DepGraph &) = delete;
  DepGraph &operator=(const DepGraph &) = delete;

  const Config &config() const { return Cfg; }
  Statistics &stats() { return Stats; }

  /// Number of nodes currently registered.
  size_t numLiveNodes() const { return NumLiveNodes; }
  /// Number of edges currently linked.
  size_t numLiveEdges() const { return NumLiveEdges; }
  /// Number of nodes pending in inconsistent sets.
  size_t numPending() const { return TotalPending; }
  /// True if the evaluator is currently draining inconsistent sets.
  bool isEvaluating() const { return EvalDepth != 0; }

  /// Records that \p Sink depends on \p Source and unites their partitions.
  /// Duplicate edges within Sink's current execution are skipped when
  /// Config::DedupEdges is set. Also raises Sink's level above Source's.
  void addDependency(DepNode &Sink, DepNode &Source);

  /// Detaches every predecessor edge of \p Sink (Algorithm 5's
  /// RemovePredEdges, run before re-executing a procedure so the new
  /// execution records a fresh referenced-argument set R(p)).
  void removePredEdges(DepNode &Sink);

  /// Marks the start of an execution of procedure node \p Proc: sets
  /// consistent(Proc) (Algorithm 5), clears its level, stamps it for edge
  /// dedup, and flags it as executing.
  void beginExecution(DepNode &Proc);

  /// Marks the end of the current execution of \p Proc. If the node was
  /// invalidated while it ran (e.g. it wrote storage it also reads), it
  /// stays inconsistent and is left queued for a later round.
  void endExecution(DepNode &Proc);

  /// Adds \p N to its partition's inconsistent set (Section 4.4). Used for
  /// changed storage and for explicit invalidation.
  void markInconsistent(DepNode &N);

  /// True if the partition containing \p N has pending work (or, with
  /// partitioning disabled, if anything is pending).
  bool hasPendingFor(DepNode &N);

  /// Drains the inconsistent set of \p N's partition, processing each node
  /// per Section 4.5. Reentrant: procedure executions triggered from inside
  /// may call back into the evaluator.
  void evaluateFor(DepNode &N);

  /// Drains every partition's inconsistent set. With Config::Workers > 0
  /// (and partitioning on, no batch open, top-level entry) independent
  /// partitions are drained concurrently by the propagation scheduler;
  /// otherwise this is the classic serial drain.
  void evaluateAll();

  /// True when the given nodes are currently in the same partition.
  bool samePartition(DepNode &A, DepNode &B);

  //===--------------------------------------------------------------------===//
  // Transactional mutation batches — see DESIGN.md "Transactions and
  // recovery". Batches do not nest.
  //===--------------------------------------------------------------------===//

  /// True between beginBatch() and the matching commitBatch()/
  /// rollbackBatch(). Typed layers consult this to decide whether to
  /// journal their mutations.
  bool inBatch() const { return TxnActive; }

  /// Monotonic commit/rollback counter: advanced once per batch outcome
  /// (either way), never reused. External state keyed to an epoch is
  /// stale whenever the graph's epoch differs.
  uint64_t epoch() const { return Epoch; }

  /// Opens a batch. The graph should be quiescent (numPending() == 0);
  /// callers normally pump first (Runtime::beginBatch does). Must not be
  /// called while the evaluator is draining, and batches do not nest.
  void beginBatch();

  /// Runs quiescence propagation (evaluateAll) for the batch. If any node
  /// faulted during the batch or the propagation — exception, divergence,
  /// cycle, step limit — the whole batch is rolled back to the pre-batch
  /// state and this returns false (abortFault() tells why). On success
  /// the journal is discarded, the epoch advances, and this returns true.
  bool commitBatch();

  /// Replays the undo journal in reverse, restoring the pre-batch
  /// quiescent state: storage snapshots, cached values, edges, levels,
  /// execution stamps, versions, quarantine membership, and pending sets
  /// (cleared — the pre-batch state was quiescent). Audited by verify()
  /// under Config::VerifyOnRollback.
  void rollbackBatch();

  /// The first fault that aborted the last commitBatch(), or nullptr if
  /// the last batch committed (or none ran).
  const FaultInfo *abortFault() const {
    return AbortFault ? &*AbortFault : nullptr;
  }

  /// Appends a typed-layer restore closure to the journal. Only valid
  /// inside a batch; no-op while a rollback is replaying (the replay must
  /// not journal its own restores).
  void logUndo(std::function<void()> Undo);

  /// Journal size of the current batch (test/stats visibility).
  size_t undoLogSize() const { return Journal.size(); }

  //===--------------------------------------------------------------------===//
  // Failure model (quarantine, divergence, cycles) — see DESIGN.md
  //===--------------------------------------------------------------------===//

  /// Structured fault reports (one error per quarantine / aborted
  /// propagation, plus audit findings when Config::AuditAfterEvaluate).
  const DiagnosticEngine &diagnostics() const { return Diags; }
  DiagnosticEngine &diagnostics() { return Diags; }

  /// Number of nodes currently quarantined.
  size_t numQuarantined() const { return Quarantine.size(); }

  /// The captured fault of a quarantined node, or nullptr.
  const FaultInfo *fault(const DepNode &N) const;

  /// Every quarantined node with its fault (order unspecified).
  std::vector<std::pair<DepNode *, const FaultInfo *>> quarantined() const;

  /// Moves \p N to the quarantine set: it is pulled from its pending set,
  /// flagged inconsistent, and ignored by markInconsistent() until reset.
  /// Its dependents are queued so they discover the fault (and cascade)
  /// at their next recompute instead of silently serving stale values.
  /// No-op if already quarantined (the first fault wins).
  void quarantine(DepNode &N, FaultInfo FI);

  /// Returns a quarantined node to service: the fault is dropped and the
  /// node is left inconsistent (eager nodes re-queue) so its next
  /// call/pump recomputes it. \returns false if \p N was not quarantined.
  bool resetQuarantined(DepNode &N);

  /// Resets every quarantined node. \returns how many were reset.
  size_t resetAllQuarantined();

  /// Opens a bounded re-entrant (conventional) run of the in-flight
  /// instance \p N. Throws CycleError when Config::MaxReentrantDepth is
  /// exceeded — the generic in-flight dependency-cycle detector.
  void beginReentrant(DepNode &N);
  void endReentrant(DepNode &N);

  /// Flags the executing node \p Proc inconsistent mid-run, as if it wrote
  /// storage it reads (endExecution then re-queues eager nodes). Used by
  /// the fault-injection harness to force divergence.
  void selfInvalidate(DepNode &Proc);

  /// Invariant audit over the whole graph: live node/edge counts, edge
  /// linkage, level monotonicity across up-to-date edges, pending-set and
  /// partition agreement, and quarantine disjointness. \returns one
  /// message per violation (empty = healthy). Runnable any time the
  /// evaluator is not mid-step; also wired to Config::AuditAfterEvaluate.
  std::vector<std::string> verify() const;

  //===--------------------------------------------------------------------===//
  // Parallel propagation — see DESIGN.md "Parallel propagation"
  //===--------------------------------------------------------------------===//

  /// RAII conditional lock over the graph's shared bookkeeping (pending
  /// sets, union-find, edge pool, journal, quarantine). On the serial
  /// path it costs one atomic load and takes no lock, so Workers = 0 is
  /// byte-identical to the pre-parallel evaluator; during a wave it
  /// holds the graph's recursive state mutex.
  class StateGuard {
  public:
    explicit StateGuard(const DepGraph &G) : G(G) {
      if (G.ParallelOn.load(std::memory_order_acquire)) {
        G.StateMu.lock();
        Locked = true;
      }
    }
    ~StateGuard() {
      if (Locked)
        G.StateMu.unlock();
    }
    StateGuard(const StateGuard &) = delete;
    StateGuard &operator=(const StateGuard &) = delete;

  private:
    const DepGraph &G;
    bool Locked = false;
  };

  /// Called by a typed-layer execution running on a wave worker before it
  /// relies on state reachable from \p Target: claims Target's partition
  /// for the calling drain task if unowned, returns if already owned by
  /// it, and otherwise unites Target's partition with \p Accessor's (when
  /// given) and throws RetryConflict — the execution is abandoned, left
  /// inconsistent, and retried by the partition's surviving owner or the
  /// post-wave serial mop-up. No-op on the main thread and outside waves.
  void ensureWorkerAccess(DepNode &Target, DepNode *Accessor);

private:
  friend class DepNode;
  friend class PropagationScheduler;

  void registerNode(DepNode &N);
  void unregisterNode(DepNode &N);

  Edge *allocateEdge();
  void freeEdge(Edge *E);
  void unlinkEdge(Edge *E);

  /// Processes one popped node per the Section 4.5 case analysis. Never
  /// throws: a failing recompute quarantines the node and the drain
  /// continues with the partition's remaining pending work.
  void processNode(DepNode &N);
  void enqueueSuccessors(DepNode &N);

  /// Removes a queued node from whichever pending set holds it and fixes
  /// the TotalPending count (used by unregisterNode and quarantine).
  void eraseFromPendingSets(DepNode &N);

  /// True when the per-propagation divergence counter of \p N trips
  /// Config::MaxReexecutions (counter is maintained here).
  bool tripsReexecutionLimit(DepNode &N);

  InconsistentSet &setFor(DepNode &N);

  /// The pre-parallel top-level drain loop: drains every partition's
  /// pending set on the calling thread. evaluateAll() delegates here
  /// directly when Workers == 0, and the scheduler uses it as the
  /// serial-affinity path and the post-wave mop-up.
  void evaluateAllSerial();

  /// Unites the partitions rooted at \p RootA and \p RootB (both must be
  /// current roots), merging orphaned pending sets and serial tags and —
  /// during a wave — reassigning ownership of the merged partition. When
  /// the merge joins a foreign in-flight drain task's partition from a
  /// worker thread, ownership goes to the foreign task and this throws
  /// RetryConflict. \returns the merged root.
  UnionFind::Id uniteRoots(UnionFind::Id RootA, UnionFind::Id RootB);

  /// Marks \p N's partition serial-affine (DepNode::requireSerialEval).
  void tagSerialPartition(DepNode &N);

  /// True when mutations should be journaled: inside a batch, but not
  /// while rollback itself is replaying.
  bool journaling() const { return TxnActive && !TxnRollingBack; }
  void applyUndo(UndoEntry &E);
  /// Recreates one edge raw during rollback: links only, no level /
  /// partition / dedup bookkeeping (levels and stamps are restored by
  /// ExecSnapshot entries; partition unions are a sound over-merge).
  void relinkEdge(DepNode &Source, DepNode &Sink);
  /// Unlinks one Source -> Sink edge during rollback (no-op if none
  /// remains, e.g. the sink re-executed later in the batch).
  void unlinkOneEdge(DepNode &Source, DepNode &Sink);
  /// Empties every pending set (rollback's final step: the pre-batch
  /// state was quiescent, so nothing may stay queued).
  void clearAllPending();

  Statistics &Stats;
  Config Cfg;
  DiagnosticEngine Diags;

  UnionFind Partitions;
  /// Pending sets keyed by current union-find root. With partitioning
  /// disabled, GlobalSet is used instead.
  std::unordered_map<UnionFind::Id, InconsistentSet> SetMap;
  InconsistentSet GlobalSet;
  /// Roots that may have pending work (may contain stale ids).
  std::vector<UnionFind::Id> DirtyRoots;

  /// Edge allocation fast path: free-list pool over a bump arena (edge
  /// churn at every re-execution is the graph's hottest allocation).
  Pool<Edge> Edges;

  /// Quarantined nodes and their captured faults.
  std::unordered_map<DepNode *, FaultInfo> Quarantine;
  /// Head of the intrusive all-nodes registry (verify() iterates it).
  DepNode *AllNodes = nullptr;

  /// Undo journal of the active batch (empty outside one).
  UndoLog Journal;
  /// A batch is open (beginBatch .. commit/rollback).
  bool TxnActive = false;
  /// rollbackBatch() is replaying; suppresses journaling and scrubbing.
  bool TxnRollingBack = false;
  /// Nodes quarantined since beginBatch(); any nonzero value aborts the
  /// commit.
  uint64_t TxnNewFaults = 0;
  /// First in-batch fault (the abort reason surfaced by abortFault()).
  std::optional<FaultInfo> AbortFault;
  /// Commit/rollback epoch (see epoch()).
  uint64_t Epoch = 1;
  /// Source of DepNode::Version stamps; monotonic, never rolled back.
  /// Atomic because wave workers stamp executions concurrently; the
  /// serial instruction sequence is unchanged.
  std::atomic<uint64_t> VersionCounter{0};

  size_t NumLiveNodes = 0;
  size_t NumLiveEdges = 0;
  size_t TotalPending = 0;
  /// Source of DepNode::ExecStamp (atomic for wave workers, as above).
  std::atomic<uint64_t> StampCounter{0};
  std::atomic<uint64_t> EvalSteps{0};
  /// Stamp of the current top-level propagation (divergence counters are
  /// scoped to one epoch).
  uint64_t EvalEpoch = 0;
  int EvalDepth = 0;
  /// Set when EvalStepLimit trips; every drain loop unwinds, leaving the
  /// remaining pending work queued. Cleared at the next top-level entry.
  std::atomic<bool> DrainAborted{false};

  //===--------------------------------------------------------------------===//
  // Parallel propagation state (all mutation under StateMu while a wave
  // is in flight; quiescent otherwise).
  //===--------------------------------------------------------------------===//

  /// Guards the shared bookkeeping during waves. Recursive because
  /// guarded operations nest (e.g. addDependency inside a guarded
  /// execution prologue).
  mutable std::recursive_mutex StateMu;
  /// True only while a parallel wave is in flight; gates StateGuard.
  std::atomic<bool> ParallelOn{false};
  /// Wave ownership: union-find root -> drain-task id (1..N). Meaningful
  /// only while ParallelOn; cleared between waves.
  std::unordered_map<UnionFind::Id, uint32_t> Owners;
  /// Serial-affinity tags indexed by union-find element id; a set tag on
  /// a root means the whole partition drains on the calling thread.
  std::vector<char> SerialTag;
  /// Worker pool + wave driver; created lazily on the first parallel
  /// evaluateAll() with Workers > 0.
  std::unique_ptr<PropagationScheduler> Scheduler;
};

/// RAII pair for beginExecution/endExecution: the execution protocol is
/// correctly closed even when the procedure body throws, so a failing
/// recompute unwinds with the graph's flags and queues coherent.
class ExecutionScope {
public:
  ExecutionScope(DepGraph &G, DepNode &Proc) : G(G), Proc(Proc) {
    G.beginExecution(Proc);
  }
  ~ExecutionScope() { G.endExecution(Proc); }

  ExecutionScope(const ExecutionScope &) = delete;
  ExecutionScope &operator=(const ExecutionScope &) = delete;

private:
  DepGraph &G;
  DepNode &Proc;
};

/// RAII pair for beginReentrant/endReentrant around a re-entrant
/// (conventional) run of an in-flight instance. The constructor throws
/// CycleError when the nesting exceeds Config::MaxReentrantDepth.
class ReentrantScope {
public:
  ReentrantScope(DepGraph &G, DepNode &Proc) : G(G), Proc(Proc) {
    G.beginReentrant(Proc); // May throw; the destructor then never runs.
  }
  ~ReentrantScope() { G.endReentrant(Proc); }

  ReentrantScope(const ReentrantScope &) = delete;
  ReentrantScope &operator=(const ReentrantScope &) = delete;

private:
  DepGraph &G;
  DepNode &Proc;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_DEPGRAPH_H
