//===- DepGraph.h - Dynamic dependency graph --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic dependency graph and change-propagation evaluator of
/// Sections 4 and 6.3 of the paper. DepGraph owns edges (pooled), the
/// union-find partition manager with one inconsistent set per partition,
/// and the evaluation routine of Section 4.5. Nodes are owned by the typed
/// layer (Cell / Maintained / interpreter objects) and register themselves.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_DEPGRAPH_H
#define ALPHONSE_GRAPH_DEPGRAPH_H

#include "graph/DepNode.h"
#include "graph/InconsistentSet.h"
#include "support/Statistics.h"
#include "support/UnionFind.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace alphonse {

/// The dependency graph plus its evaluator.
///
/// All mutation goes through the graph so that bookkeeping (statistics,
/// partitions, pending sets) stays coherent. Single-threaded, matching the
/// paper's execution model (parallel evaluation is listed there as future
/// work).
class DepGraph {
public:
  /// Tunables; the defaults match the paper, the flags exist for the
  /// ablation experiments in DESIGN.md Section 5.
  struct Config {
    /// Keep one inconsistent set per union-find partition (Section 6.3) so
    /// that changes in unrelated structures do not force evaluation.
    bool Partitioning = true;
    /// Suppress propagation from storage whose live value equals the cached
    /// snapshot (Algorithm 4's value comparison; experiment E11).
    bool VariableCutoff = true;
    /// Skip duplicate edges created by one execution reading one location
    /// repeatedly.
    bool DedupEdges = true;
    /// Abort evaluation after this many steps (0 = unlimited). A generous
    /// non-zero value guards against DET-violating user procedures that
    /// never converge.
    uint64_t EvalStepLimit = 0;
  };

  explicit DepGraph(Statistics &Stats);
  DepGraph(Statistics &Stats, Config Cfg);
  ~DepGraph();

  DepGraph(const DepGraph &) = delete;
  DepGraph &operator=(const DepGraph &) = delete;

  const Config &config() const { return Cfg; }
  Statistics &stats() { return Stats; }

  /// Number of nodes currently registered.
  size_t numLiveNodes() const { return NumLiveNodes; }
  /// Number of edges currently linked.
  size_t numLiveEdges() const { return NumLiveEdges; }
  /// Number of nodes pending in inconsistent sets.
  size_t numPending() const { return TotalPending; }
  /// True if the evaluator is currently draining inconsistent sets.
  bool isEvaluating() const { return EvalDepth != 0; }

  /// Records that \p Sink depends on \p Source and unites their partitions.
  /// Duplicate edges within Sink's current execution are skipped when
  /// Config::DedupEdges is set. Also raises Sink's level above Source's.
  void addDependency(DepNode &Sink, DepNode &Source);

  /// Detaches every predecessor edge of \p Sink (Algorithm 5's
  /// RemovePredEdges, run before re-executing a procedure so the new
  /// execution records a fresh referenced-argument set R(p)).
  void removePredEdges(DepNode &Sink);

  /// Marks the start of an execution of procedure node \p Proc: sets
  /// consistent(Proc) (Algorithm 5), clears its level, stamps it for edge
  /// dedup, and flags it as executing.
  void beginExecution(DepNode &Proc);

  /// Marks the end of the current execution of \p Proc. If the node was
  /// invalidated while it ran (e.g. it wrote storage it also reads), it
  /// stays inconsistent and is left queued for a later round.
  void endExecution(DepNode &Proc);

  /// Adds \p N to its partition's inconsistent set (Section 4.4). Used for
  /// changed storage and for explicit invalidation.
  void markInconsistent(DepNode &N);

  /// True if the partition containing \p N has pending work (or, with
  /// partitioning disabled, if anything is pending).
  bool hasPendingFor(DepNode &N);

  /// Drains the inconsistent set of \p N's partition, processing each node
  /// per Section 4.5. Reentrant: procedure executions triggered from inside
  /// may call back into the evaluator.
  void evaluateFor(DepNode &N);

  /// Drains every partition's inconsistent set.
  void evaluateAll();

  /// True when the given nodes are currently in the same partition.
  bool samePartition(DepNode &A, DepNode &B);

private:
  friend class DepNode;

  void registerNode(DepNode &N);
  void unregisterNode(DepNode &N);

  Edge *allocateEdge();
  void freeEdge(Edge *E);
  void unlinkEdge(Edge *E);

  /// Processes one popped node per the Section 4.5 case analysis.
  void processNode(DepNode &N);
  void enqueueSuccessors(DepNode &N);

  InconsistentSet &setFor(DepNode &N);
  void drainSetOf(DepNode &N);

  Statistics &Stats;
  Config Cfg;

  UnionFind Partitions;
  /// Pending sets keyed by current union-find root. With partitioning
  /// disabled, GlobalSet is used instead.
  std::unordered_map<UnionFind::Id, InconsistentSet> SetMap;
  InconsistentSet GlobalSet;
  /// Roots that may have pending work (may contain stale ids).
  std::vector<UnionFind::Id> DirtyRoots;

  std::deque<Edge> EdgePool;
  Edge *FreeEdges = nullptr;

  size_t NumLiveNodes = 0;
  size_t NumLiveEdges = 0;
  size_t TotalPending = 0;
  uint64_t StampCounter = 0;
  uint64_t EvalSteps = 0;
  int EvalDepth = 0;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_DEPGRAPH_H
