//===- DebugDump.cpp - Dependency provenance dumps ------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "graph/DebugDump.h"

// forEachPredecessor resolves EdgeId chains through the graph's edge
// table; its template definition lives at the bottom of DepGraph.h.
#include "graph/DepGraph.h"

#include <unordered_set>
#include <vector>

namespace alphonse {

std::string describeNode(const DepNode &N) {
  std::string Out = N.name().empty() ? "<anon>" : N.name();
  Out += N.isStorage() ? " [storage" : " [proc";
  if (N.isProcedure()) {
    Out += N.strategy() == EvalStrategy::Eager ? " eager" : " demand";
    Out += N.isConsistent() ? " consistent" : " INCONSISTENT";
    if (N.isExecuting())
      Out += " executing";
  }
  if (N.isQuarantined())
    Out += " QUARANTINED";
  Out += " L" + std::to_string(N.level()) + "]";
  return Out;
}

namespace {

void dumpRec(std::ostream &OS, const DepNode &N, int Depth,
             const DumpOptions &Options,
             std::unordered_set<const DepNode *> &Seen) {
  for (int I = 0; I < Depth; ++I)
    OS << "  ";
  OS << describeNode(N);
  if (!Seen.insert(&N).second) {
    OS << " (shown above)\n";
    return;
  }
  OS << '\n';
  if (Depth >= Options.MaxDepth) {
    if (N.numPredecessors() != 0) {
      for (int I = 0; I <= Depth; ++I)
        OS << "  ";
      OS << "...\n";
    }
    return;
  }
  // Collect first so elision is stable.
  std::vector<const DepNode *> Preds;
  N.forEachPredecessor([&Preds](const DepNode &P) { Preds.push_back(&P); });
  int Shown = 0;
  for (const DepNode *P : Preds) {
    if (Shown++ >= Options.MaxFanIn) {
      for (int I = 0; I <= Depth; ++I)
        OS << "  ";
      OS << "... (" << (Preds.size() - Options.MaxFanIn)
         << " more dependencies)\n";
      break;
    }
    dumpRec(OS, *P, Depth + 1, Options, Seen);
  }
}

} // namespace

void dumpDependencies(std::ostream &OS, const DepNode &Root,
                      DumpOptions Options) {
  std::unordered_set<const DepNode *> Seen;
  dumpRec(OS, Root, 0, Options, Seen);
}

} // namespace alphonse
