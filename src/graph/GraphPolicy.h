//===- GraphPolicy.h - Partition, quarantine, journal policy ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer of the dependency-graph engine (DESIGN.md "Engine
/// layering and handle-based storage"): dynamic graph partitioning
/// (Section 6.3) with per-partition pending sets, change tracking
/// (Section 4.4's markInconsistent), the quarantine fault set, the
/// transactional undo journal's bookkeeping primitives, and parallel-wave
/// partition ownership. It sits on GraphStore and knows nothing about the
/// evaluation loops above it; the transaction *drivers* (beginBatch /
/// commitBatch / rollbackBatch) live in DepGraph because committing runs
/// the evaluator.
///
/// All hot lookups here are dense and id-indexed: pending sets and wave
/// owners are vectors indexed by union-find root, the quarantine set is a
/// flat {NodeId, fault} vector, and journal entries carry NodeIds — no
/// pointer-keyed hash map survives on a propagation path.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_GRAPHPOLICY_H
#define ALPHONSE_GRAPH_GRAPHPOLICY_H

#include "graph/GraphStore.h"
#include "graph/InconsistentSet.h"
#include "graph/UndoLog.h"
#include "support/FaultInfo.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace alphonse {

/// Internal control-flow signal of the parallel scheduler: an execution on
/// a wave worker touched a partition owned by a sibling drain task. The
/// two partitions are united, ownership of the merged partition is handed
/// to exactly one task, and the abandoned execution is left inconsistent
/// so the surviving owner (or the post-wave serial mop-up) retries it.
/// Deliberately not a FaultInfo: a conflict is a scheduling event, never a
/// program fault, and must not quarantine anything.
struct RetryConflict {};

namespace detail {
/// The drain-task id of the calling thread (0 = not a wave worker).
uint32_t &currentDrainTask();
} // namespace detail

/// Policy layer: partitions, pending sets, quarantine, journal, ownership.
class GraphPolicy : public GraphStore {
public:
  explicit GraphPolicy(Statistics &Stats) : GraphStore(Stats) {}
  GraphPolicy(Statistics &Stats, GraphConfig Cfg) : GraphStore(Stats, Cfg) {}

  /// Number of nodes pending in inconsistent sets.
  size_t numPending() const { return TotalPending; }

  /// Adds \p N to its partition's inconsistent set (Section 4.4). Used for
  /// changed storage and for explicit invalidation. Inline: this is the
  /// change-notification fast path, run once per edge of every dirtied
  /// node's successor fan-out.
  void markInconsistent(DepNode &N) {
    StateGuard Guard(*this);
    // Quarantined nodes take no further part in propagation until reset.
    if (N.Quarantined)
      return;
    // A demand procedure that is already inconsistent has already notified
    // its dependents; queueing it again would be a no-op at processing
    // time.
    if (N.isProcedure() && N.Strategy == EvalStrategy::Demand &&
        !N.Consistent && !N.Executing)
      return;
    if (!Cfg.Partitioning) {
      if (GlobalSet.push(*this, N))
        ++TotalPending;
      return;
    }
    UnionFind::Id Root = Partitions.find(N.Partition);
    if (SetVec.size() <= Root)
      SetVec.resize(Root + 1);
    if (!SetVec[Root].push(*this, N))
      return;
    ++TotalPending;
    DirtyRoots.push_back(Root);
  }

  /// True if the partition containing \p N has pending work (or, with
  /// partitioning disabled, if anything is pending).
  bool hasPendingFor(DepNode &N) {
    StateGuard Guard(*this);
    if (!Cfg.Partitioning)
      return TotalPending != 0;
    InconsistentSet *S = findSet(Partitions.find(N.Partition));
    return S && !S->empty();
  }

  /// True when the given nodes are currently in the same partition.
  bool samePartition(DepNode &A, DepNode &B);

  //===--------------------------------------------------------------------===//
  // Transactional journal bookkeeping — see DESIGN.md "Transactions and
  // recovery". The batch drivers live in DepGraph (commit evaluates).
  //===--------------------------------------------------------------------===//

  /// True between beginBatch() and the matching commitBatch()/
  /// rollbackBatch(). Typed layers consult this to decide whether to
  /// journal their mutations.
  bool inBatch() const { return TxnActive; }

  /// Monotonic commit/rollback counter: advanced once per batch outcome
  /// (either way), never reused. External state keyed to an epoch is
  /// stale whenever the graph's epoch differs.
  uint64_t epoch() const { return Epoch; }

  /// The first fault that aborted the last commitBatch(), or nullptr if
  /// the last batch committed (or none ran).
  const FaultInfo *abortFault() const {
    return AbortFault ? &*AbortFault : nullptr;
  }

  /// Appends a typed-layer restore closure to the journal. Only valid
  /// inside a batch; no-op while a rollback is replaying (the replay must
  /// not journal its own restores).
  void logUndo(std::function<void()> Undo);

  /// Journal size of the current batch (test/stats visibility).
  size_t undoLogSize() const { return Journal.size(); }

  //===--------------------------------------------------------------------===//
  // Failure model (quarantine, divergence, cycles) — see DESIGN.md
  //===--------------------------------------------------------------------===//

  /// Structured fault reports (one error per quarantine / aborted
  /// propagation, plus audit findings when Config::AuditAfterEvaluate).
  const DiagnosticEngine &diagnostics() const { return Diags; }
  DiagnosticEngine &diagnostics() { return Diags; }

  /// Number of nodes currently quarantined.
  size_t numQuarantined() const { return Quarantine.size(); }

  /// The captured fault of a quarantined node, or nullptr. The pointer is
  /// valid until the quarantine set next changes (dense-vector storage).
  const FaultInfo *fault(const DepNode &N) const;

  /// Every quarantined node with its fault (order unspecified; fault
  /// pointers valid until the quarantine set next changes).
  std::vector<std::pair<DepNode *, const FaultInfo *>> quarantined() const;

  /// Moves \p N to the quarantine set: it is pulled from its pending set,
  /// flagged inconsistent, and ignored by markInconsistent() until reset.
  /// Its dependents are queued so they discover the fault (and cascade)
  /// at their next recompute instead of silently serving stale values.
  /// No-op if already quarantined (the first fault wins).
  void quarantine(DepNode &N, FaultInfo FI);

  /// Returns a quarantined node to service: the fault is dropped and the
  /// node is left inconsistent (eager nodes re-queue) so its next
  /// call/pump recomputes it. \returns false if \p N was not quarantined.
  bool resetQuarantined(DepNode &N);

  /// Resets every quarantined node. \returns how many were reset.
  size_t resetAllQuarantined();

  //===--------------------------------------------------------------------===//
  // Parallel propagation — see DESIGN.md "Parallel propagation"
  //===--------------------------------------------------------------------===//

  /// Called by a typed-layer execution running on a wave worker before it
  /// relies on state reachable from \p Target: claims Target's partition
  /// for the calling drain task if unowned, returns if already owned by
  /// it, and otherwise unites Target's partition with \p Accessor's (when
  /// given) and throws RetryConflict — the execution is abandoned, left
  /// inconsistent, and retried by the partition's surviving owner or the
  /// post-wave serial mop-up. No-op on the main thread and outside waves.
  void ensureWorkerAccess(DepNode &Target, DepNode *Accessor);

  /// True if \p N's partition currently holds at least one serial pin —
  /// i.e. the parallel scheduler would drain it on the mutator thread.
  /// Diagnostic/test accessor.
  bool serialEvalRequired(DepNode &N);

protected:
  friend class DepNode;
  friend class PropagationScheduler;
  friend class GraphCheckpoint;
  friend class GraphRestorer;

  /// The pending set responsible for \p N (grows SetVec on demand).
  InconsistentSet &setFor(DepNode &N);

  /// The pending set of root \p Root, or nullptr if none was ever grown.
  InconsistentSet *findSet(UnionFind::Id Root) {
    return Root < SetVec.size() ? &SetVec[Root] : nullptr;
  }

  /// Removes a queued node from whichever pending set holds it and fixes
  /// the TotalPending count (used by unregisterNode and quarantine).
  void eraseFromPendingSets(DepNode &N);

  /// Empties every pending set (rollback's final step: the pre-batch
  /// state was quiescent, so nothing may stay queued).
  void clearAllPending();

  /// Unites the partitions rooted at \p RootA and \p RootB (both must be
  /// current roots), merging orphaned pending sets and serial tags and —
  /// during a wave — reassigning ownership of the merged partition. When
  /// the merge joins a foreign in-flight drain task's partition from a
  /// worker thread, ownership goes to the foreign task and this throws
  /// RetryConflict. \returns the merged root.
  UnionFind::Id uniteRoots(UnionFind::Id RootA, UnionFind::Id RootB);

  /// Adds one serial pin to \p N's partition (DepNode::requireSerialEval).
  void tagSerialPartition(DepNode &N);

  /// Releases one serial pin from \p N's partition (the node is being
  /// unregistered, or its recompiled form no longer needs thread
  /// affinity). When the count reaches zero the partition reverts to
  /// parallel eligibility.
  void untagSerialPartition(DepNode &N);

  /// Queues every dependent of \p N (change notification, Section 4.4).
  /// Guarded: a sibling wave worker recording a new dependency on \p N
  /// pushes onto N's successor list concurrently with this walk.
  void enqueueSuccessors(DepNode &N) {
    StateGuard Guard(*this);
    for (EdgeId E = N.FirstSucc; E;) {
      const Edge &Ed = edge(E);
      EdgeId Next = Ed.NextSucc;
      markInconsistent(node(Ed.Sink));
      E = Next;
    }
  }

  /// True when mutations should be journaled: inside a batch, but not
  /// while rollback itself is replaying.
  bool journaling() const { return TxnActive && !TxnRollingBack; }

  /// Index of \p Id's quarantine entry, or npos.
  size_t findFault(NodeId Id) const;

  /// Wave ownership accessors (dense by root id; meaningful only while
  /// ParallelOn). All callers hold the state lock.
  uint32_t owner(UnionFind::Id Root) const {
    return Root < Owners.size() ? Owners[Root] : 0;
  }
  void setOwner(UnionFind::Id Root, uint32_t Task) {
    if (Owners.size() <= Root)
      Owners.resize(Root + 1, 0);
    Owners[Root] = Task;
  }
  void releaseOwner(UnionFind::Id Root) {
    if (Root < Owners.size())
      Owners[Root] = 0;
  }
  void clearOwners() { std::fill(Owners.begin(), Owners.end(), 0); }

  UnionFind Partitions;
  /// Pending sets indexed by union-find root id (dense; grown on demand).
  /// With partitioning disabled, GlobalSet is used instead.
  std::vector<InconsistentSet> SetVec;
  InconsistentSet GlobalSet;
  /// Roots that may have pending work (may contain stale ids).
  std::vector<UnionFind::Id> DirtyRoots;
  size_t TotalPending = 0;

  /// Quarantined nodes and their captured faults (dense; quarantine sets
  /// are tiny, linear scans beat hashing).
  std::vector<std::pair<NodeId, FaultInfo>> Quarantine;

  /// Undo journal of the active batch (empty outside one).
  UndoLog Journal;
  /// A batch is open (beginBatch .. commit/rollback).
  bool TxnActive = false;
  /// rollbackBatch() is replaying; suppresses journaling and scrubbing.
  bool TxnRollingBack = false;
  /// Nodes quarantined since beginBatch(); any nonzero value aborts the
  /// commit.
  uint64_t TxnNewFaults = 0;
  /// First in-batch fault (the abort reason surfaced by abortFault()).
  std::optional<FaultInfo> AbortFault;
  /// Commit/rollback epoch (see epoch()).
  uint64_t Epoch = 1;

  /// Wave ownership indexed by union-find root: drain-task id (1..N), 0 =
  /// unowned. Meaningful only while ParallelOn; cleared between waves.
  std::vector<uint32_t> Owners;
  /// Serial-affinity pin counts indexed by union-find element id; a
  /// nonzero count on a root means the whole partition drains on the
  /// calling thread. Counted (not a sticky bit) so that destroying the
  /// last pinned node of a partition returns it to the parallel waves;
  /// merges sum the two roots' counts.
  std::vector<uint32_t> SerialTag;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_GRAPHPOLICY_H
