//===- Governor.cpp - Wave resource governance ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "graph/Governor.h"

#include "support/FaultInjector.h"

#include <chrono>
#include <thread>

namespace alphonse {

bool Governor::checkBoundary(uint64_t StepsDone, uint64_t SlabBytes) {
  // Virtual time passes at step boundaries: with a Tick armed on
  // "gov.tick", each boundary advances the virtual clock by a fixed
  // amount, making "the deadline expires at step N" an exact statement.
  faultInjectionPoint("gov.tick");
  if (Cur.StepBudget != 0 && StepsDone >= Cur.StepBudget) {
    ++Stats.GovStepBudgetHits;
    return latchCancel(WaveOutcome::DegradedSteps);
  }
  if (Cur.MemCeilingBytes != 0 && SlabBytes > Cur.MemCeilingBytes) {
    ++Stats.GovMemCeilingHits;
    return latchCancel(WaveOutcome::DegradedMemory);
  }
  if (Cur.DeadlineUs != 0 && GovClock::nowUs() - StartUs >= Cur.DeadlineUs) {
    ++Stats.GovDeadlineExpired;
    return latchCancel(WaveOutcome::DegradedDeadline);
  }
  return false;
}

bool Governor::latchCancel(WaveOutcome Why) {
  bool Expected = false;
  if (CancelFlag.compare_exchange_strong(Expected, true,
                                         std::memory_order_acq_rel))
    CancelWhy.store(static_cast<uint8_t>(Why), std::memory_order_relaxed);
  return true;
}

void Governor::backoffWait(uint64_t Us) {
  uint64_t Remaining = remainingDeadlineUs();
  if (Us > Remaining)
    Us = Remaining;
  if (Us == 0)
    return;
  ++Stats.GovBackoffWaits;
  if (GovClock::virtualEnabled()) {
    GovClock::advance(Us);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(Us));
}

} // namespace alphonse
