//===- UndoLog.h - Transactional undo journal -------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The undo journal behind DepGraph's transactional mutation batches
/// (DESIGN.md "Transactions and recovery"). Between beginBatch() and
/// commitBatch()/rollbackBatch() every mutation appends one entry; a
/// rollback replays the journal in reverse, restoring the exact pre-batch
/// quiescent state.
///
/// Two entry families coexist:
///
///  - Structural entries (EdgeAdded, PredsRemoved, ExecSnapshot,
///    VersionStamp, Quarantined, QuarantineCleared) are interpreted by
///    DepGraph itself, which owns the touched state. They reference nodes
///    by generation-checked NodeId, so a replay that would touch a
///    recycled slot traps on the generation mismatch instead of silently
///    mutating the slot's new occupant.
///  - Action entries carry an opaque closure from a typed layer (Cell's
///    old-value snapshot, Maintained's cache-entry erase, an interpreter
///    slot restore). The graph cannot name those types, so the layer
///    captures the restore itself via DepGraph::logUndo().
///
/// Ordering invariant the reverse replay relies on: any entry referencing
/// a node appears *after* the entry that would destroy that node on
/// rollback (nodes are journaled at creation, referenced afterwards), so
/// references are undone before their target dies. A node destroyed
/// mid-batch by the mutator itself is handled by scrub(), which drops the
/// structural entries that point at it.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_UNDOLOG_H
#define ALPHONSE_GRAPH_UNDOLOG_H

#include "graph/Handle.h"
#include "support/FaultInfo.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace alphonse {

/// One journaled mutation; replayed in reverse order by rollbackBatch().
struct UndoEntry {
  enum class Kind : uint8_t {
    /// Run the typed-layer closure in Undo.
    Action,
    /// An edge Source -> Sink was created; rollback unlinks one such edge.
    EdgeAdded,
    /// Sink's predecessor edges were detached (Algorithm 5's
    /// RemovePredEdges before a re-execution); rollback relinks them.
    PredsRemoved,
    /// Sink entered beginExecution(); rollback restores its Consistent /
    /// Level / ExecStamp / Version to the recorded pre-execution values.
    ExecSnapshot,
    /// Sink's value version was advanced (storage change); rollback
    /// restores OldVersion.
    VersionStamp,
    /// Sink was quarantined during the batch; rollback lifts the
    /// quarantine and restores WasConsistent.
    Quarantined,
    /// Sink's quarantine was reset during the batch; rollback re-imposes
    /// it with the preserved fault in Saved.
    QuarantineCleared,
  };

  Kind K = Kind::Action;
  NodeId Sink;
  NodeId Source;                     ///< EdgeAdded only.
  std::vector<NodeId> Sources;       ///< PredsRemoved only.
  std::function<void()> Undo;        ///< Action only.
  FaultInfo Saved;                   ///< QuarantineCleared only.
  bool WasConsistent = false;        ///< ExecSnapshot, Quarantined.
  uint32_t OldLevel = 0;             ///< ExecSnapshot.
  uint64_t OldStamp = 0;             ///< ExecSnapshot.
  uint64_t OldVersion = 0;           ///< ExecSnapshot, VersionStamp.
};

/// Append-only journal of one batch, replayed backwards on rollback.
class UndoLog {
public:
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  void push(UndoEntry E) { Entries.push_back(std::move(E)); }

  void clear() { Entries.clear(); }

  /// Drops structural entries referencing node \p N. Called when a node is
  /// destroyed mid-batch by the mutator (not by rollback): the journal
  /// must never resolve a dead handle during replay. Action entries are
  /// kept — their closures are the typed layer's responsibility, and the
  /// layer destroys nodes only through owners whose own undo entry (the
  /// owner reset) precedes every capture of the node. The full 32-bit
  /// handle is compared, so a recycled slot index never aliases.
  void scrub(NodeId N) {
    Entries.erase(
        std::remove_if(Entries.begin(), Entries.end(),
                       [&](UndoEntry &E) {
                         if (E.K == UndoEntry::Kind::Action)
                           return false;
                         if (E.K == UndoEntry::Kind::PredsRemoved) {
                           if (E.Sink == N)
                             return true;
                           E.Sources.erase(std::remove(E.Sources.begin(),
                                                       E.Sources.end(), N),
                                           E.Sources.end());
                           return false;
                         }
                         return E.Sink == N || E.Source == N;
                       }),
        Entries.end());
  }

  /// Applies \p Apply to every entry, newest first.
  template <typename Fn> void replayReverse(Fn Apply) {
    for (size_t I = Entries.size(); I-- > 0;)
      Apply(Entries[I]);
  }

private:
  std::vector<UndoEntry> Entries;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_UNDOLOG_H
