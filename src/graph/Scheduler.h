//===- Scheduler.h - Parallel quiescence propagation ------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel driver for top-level quiescence propagation (DESIGN.md
/// "Parallel propagation"). Section 6.3's dynamic graph partitions are
/// exactly the independence structure parallel evaluation needs: no edge
/// crosses a partition boundary, so distinct partitions' inconsistent sets
/// can drain concurrently, each in the classic serial level order. The
/// scheduler dispatches one drain task per pending partition onto a fixed
/// worker pool in "waves"; executions that create a cross-partition
/// dependency mid-wave merge the partitions and hand the merged work to a
/// single surviving owner (see DepGraph::uniteRoots / RetryConflict), and
/// a post-wave serial mop-up guarantees quiescence regardless of how the
/// waves went.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_SCHEDULER_H
#define ALPHONSE_GRAPH_SCHEDULER_H

#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <cstdint>
#include <memory>

namespace alphonse {

class DepGraph;

/// Drains a graph's pending partitions concurrently on a fixed pool.
class PropagationScheduler {
public:
  /// Drives waves on \p Shared when non-null (the pool must outlive the
  /// scheduler, and must not be carrying unrelated tasks during run() —
  /// wave barriers use pool-global wait()); otherwise spins up an owned
  /// pool of up to \p Workers threads (bounded by the per-pool shard
  /// budget; workers() reports the real size).
  PropagationScheduler(DepGraph &G, unsigned Workers,
                       ThreadPool *Shared = nullptr);

  unsigned workers() const { return Pool->size(); }

  /// One full top-level propagation: repeats waves of concurrent
  /// per-partition drains until the graph is quiescent (or the drain is
  /// aborted by the step limit). Serial-affine partitions and any
  /// conflict leftovers drain on the calling thread. Must be called from
  /// the owning (main) thread at evaluator depth zero.
  void run();

private:
  /// One wave task: drains the partition anchored at \p Anchor on a pool
  /// worker as drain task \p Me, until the partition is quiescent, its
  /// ownership moves to a sibling (merge), or the wave aborts.
  void drainRoot(UnionFind::Id Anchor, uint32_t Me);

  DepGraph &G;
  /// The pool waves dispatch onto: Owned when the scheduler created it,
  /// an external (shared) pool otherwise.
  ThreadPool *Pool;
  std::unique_ptr<ThreadPool> Owned;
  /// LCG state for the deterministic jitter mixed into the conflicted-
  /// retry backoff (no global RNG: runs stay reproducible).
  uint64_t JitterSeed = 0x9e3779b97f4a7c15ULL;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_SCHEDULER_H
