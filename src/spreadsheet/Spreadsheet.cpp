//===- Spreadsheet.cpp - Incremental spreadsheet --------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "spreadsheet/Spreadsheet.h"

#include "support/CheckpointIO.h"

namespace alphonse::spreadsheet {

using attrgram::Env;
using attrgram::Exp;
using attrgram::ExprTree;
using attrgram::IntExp;

/// Algorithm 10's CellExp: a production with two integer terminal fields
/// selecting another cell whose value() it returns. (Named, not in an
/// anonymous namespace, so the Spreadsheet friend declaration applies.)
class CellRefExp final : public Exp {
public:
  CellRefExp(Runtime &RT, Spreadsheet &Sheet, int Row, int Col)
      : Exp(RT), Row(RT, Row, "cellref.x"), Col(RT, Col, "cellref.y"),
        Sheet(&Sheet) {}

  Cell<int> Row;
  Cell<int> Col;

protected:
  // CellVal: cells[o.x, o.y].value().
  int computeValue(ExprTree &) override {
    return Sheet->cellValue(Row.get(), Col.get());
  }

  Env computeEnv(ExprTree &, Exp *) override {
    assert(false && "cell references have no nonterminal children");
    return Env();
  }

  int oracleValue(const Env &) const override {
    return Sheet->oracleValue(Row.peek(), Col.peek());
  }

private:
  Spreadsheet *Sheet;
};

Spreadsheet::Spreadsheet(Runtime &RT, int Rows, int Cols)
    : RT(RT), NumRows(Rows), NumCols(Cols), Tree(RT),
      CellVal(
          RT, [this](int R, int C) { return computeCellValue(R, C); },
          EvalStrategy::Demand, "Sheet.value"),
      InFlight(static_cast<size_t>(Rows) * Cols, 0) {
  assert(Rows > 0 && Cols > 0 && "spreadsheet must have a positive extent");
  Grid.reserve(InFlight.size());
  for (size_t I = 0; I < InFlight.size(); ++I)
    Grid.push_back(
        std::make_unique<Cell<Exp *>>(RT, nullptr, "sheet.func"));
  Sources.resize(InFlight.size());
}

Spreadsheet::~Spreadsheet() = default;

size_t Spreadsheet::index(int Row, int Col) const {
  assert(inRange(Row, Col) && "cell index out of range");
  return static_cast<size_t>(Row) * NumCols + Col;
}

Exp *Spreadsheet::makeCellRef(int Row, int Col) {
  if (!inRange(Row, Col))
    return nullptr;
  return Tree.adopt(std::make_unique<CellRefExp>(RT, *this, Row, Col));
}

void Spreadsheet::recordSource(size_t I, std::string Src) {
  // The graph journal restores the tree on rollback; the source text must
  // travel with it or a rolled-back setAll would checkpoint stale text.
  if (RT.inBatch())
    RT.graph().logUndo([this, I, Old = Sources[I]]() { Sources[I] = Old; });
  Sources[I] = std::move(Src);
}

bool Spreadsheet::setFormula(int Row, int Col, const std::string &Source) {
  Exp *Parsed = attrgram::parseFormula(
      Tree, Source, Diags, [this](int R, int C) { return makeCellRef(R, C); });
  if (!Parsed)
    return false;
  size_t I = index(Row, Col);
  Grid[I]->set(Parsed);
  recordSource(I, Source);
  return true;
}

void Spreadsheet::setLiteral(int Row, int Col, int Value) {
  size_t I = index(Row, Col);
  Cell<Exp *> &Slot = *Grid[I];
  recordSource(I, std::to_string(Value));
  if (Exp *Cur = Slot.peek())
    if (IntExp *Lit = Cur->asIntExp()) {
      Lit->Lit.set(Value); // In-place edit: only the literal cell changes.
      return;
    }
  Slot.set(Tree.makeInt(Value));
}

void Spreadsheet::clearCell(int Row, int Col) {
  size_t I = index(Row, Col);
  Grid[I]->set(nullptr);
  recordSource(I, "");
}

bool Spreadsheet::setAll(const std::vector<CellEdit> &Edits) {
  // CycleFlag is not a Cell, so the transaction cannot restore it; keep
  // the pre-batch value aside and use the flag to detect cycles the batch
  // itself introduces.
  bool PriorCycle = CycleFlag;
  Transaction Txn(RT);
  CycleFlag = false;
  auto Abort = [&]() {
    if (!Txn.finished())
      Txn.rollback();
    CycleFlag = PriorCycle;
    return false;
  };
  for (const CellEdit &E : Edits) {
    if (!inRange(E.Row, E.Col)) {
      Diags.error(SourceLocation(), "setAll: cell (" + std::to_string(E.Row) +
                                        ", " + std::to_string(E.Col) +
                                        ") is out of range");
      return Abort();
    }
    if (E.Formula.empty()) {
      clearCell(E.Row, E.Col);
      continue;
    }
    if (!setFormula(E.Row, E.Col, E.Formula))
      return Abort();
  }
  // Demand every edited cell inside the batch: faulting formulas and
  // reference cycles surface now, while rollback can still revert them.
  try {
    for (const CellEdit &E : Edits)
      value(E.Row, E.Col);
  } catch (...) {
    return Abort();
  }
  if (CycleFlag)
    return Abort();
  if (!Txn.commit())
    return Abort();
  CycleFlag = PriorCycle;
  return true;
}

int Spreadsheet::value(int Row, int Col) { return CellVal(Row, Col); }

bool Spreadsheet::valueIsStale(int Row, int Col) const {
  return CellVal.isStale(Row, Col);
}

int Spreadsheet::computeCellValue(int Row, int Col) {
  // Reference cycle: evaluate to 0 and raise the flag (documented
  // divergence from the paper, which leaves cycles undefined). The signal
  // comes from the dependency graph itself: a nonzero re-entrant depth on
  // this cell's own instance node means its value is being demanded while
  // it computes. No local in-flight bookkeeping, so a formula that throws
  // (e.g. a quarantined reference) unwinds without leaking state.
  if (DepNode *Self = CellVal.instanceNode(Row, Col))
    if (Self->reentrantDepth() > 0) {
      CycleFlag = true;
      return 0;
    }
  Exp *Formula = Grid[index(Row, Col)]->get();
  return Formula ? Tree.value(Formula) : 0;
}

int Spreadsheet::oracleValue(int Row, int Col) const {
  size_t I = index(Row, Col);
  if (PassActive && PassDone[I])
    return PassMemo[I];
  if (InFlight[I])
    return 0; // Cycle: mirror the incremental semantics.
  const Exp *Formula = Grid[I]->peek();
  int Result = 0;
  if (Formula) {
    InFlight[I] = 1;
    Result = Tree.oracleValue(Formula);
    InFlight[I] = 0;
  }
  if (PassActive) {
    PassMemo[I] = Result;
    PassDone[I] = 1;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Durable checkpoints (DESIGN.md Section 10): the structural tier
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t TagSheet = sectionTag('S', 'H', 'E', 'T');
} // namespace

void Spreadsheet::saveCheckpoint(const std::string &Path) {
  // Capture requires true quiescence whatever the default budget: a
  // checkpoint of a degraded (half-propagated) state would persist stale
  // values as durable truth.
  RT.pumpUnbounded();
  CheckpointWriter W;
  ByteWriter B;
  B.u32(static_cast<uint32_t>(NumRows));
  B.u32(static_cast<uint32_t>(NumCols));
  B.u8(CycleFlag ? 1 : 0);
  for (int R = 0; R < NumRows; ++R)
    for (int C = 0; C < NumCols; ++C) {
      B.str(Sources[index(R, C)]);
      // The oracle value: untracked, so capture perturbs no graph state.
      B.i64(oracleValue(R, C));
    }
  W.addSection(TagSheet, B.take());
  uint64_t Bytes = W.writeFile(Path);
  Statistics &S = RT.stats();
  ++S.CkptSnapshots;
  S.CkptSections += W.numSections();
  S.CkptBytesWritten += Bytes;
}

void Spreadsheet::restoreCheckpoint(const std::string &Path) {
  CheckpointReader R(Path);
  ByteReader B = R.section(TagSheet);
  uint32_t Rows = B.u32(), Cols = B.u32();
  if (Rows != static_cast<uint32_t>(NumRows) ||
      Cols != static_cast<uint32_t>(NumCols))
    throw CheckpointError(CkptError::Malformed,
                          "sheet checkpoint is " + std::to_string(Rows) +
                              "x" + std::to_string(Cols) +
                              ", this sheet is " + std::to_string(NumRows) +
                              "x" + std::to_string(NumCols));
  uint8_t Flag = B.u8();
  if (Flag > 1)
    throw CheckpointError(CkptError::Malformed,
                          "cycle flag out of range in sheet checkpoint");

  // Stage everything (and finish bounds-checking) before touching cells.
  struct StagedCell {
    std::string Source;
    long long Expected;
  };
  std::vector<StagedCell> Staged;
  Staged.reserve(Grid.size());
  for (size_t I = 0; I < Grid.size(); ++I) {
    StagedCell SC;
    SC.Source = B.str();
    SC.Expected = B.i64();
    Staged.push_back(std::move(SC));
  }
  if (!B.atEnd())
    throw CheckpointError(CkptError::Malformed,
                          "trailing bytes in sheet checkpoint");

  // Re-derive: the formula trees are pointer-keyed productions, so the
  // sheet re-parses its way back instead of binding saved graph nodes.
  for (int Row = 0; Row < NumRows; ++Row)
    for (int Col = 0; Col < NumCols; ++Col) {
      const StagedCell &SC = Staged[index(Row, Col)];
      if (SC.Source.empty()) {
        clearCell(Row, Col);
        continue;
      }
      if (!setFormula(Row, Col, SC.Source))
        throw CheckpointError(CkptError::Malformed,
                              "formula for cell (" + std::to_string(Row) +
                                  ", " + std::to_string(Col) +
                                  ") no longer parses");
    }

  // Recompute-validate: every restored cell must evaluate to its captured
  // value, or the checkpoint does not describe this program.
  for (int Row = 0; Row < NumRows; ++Row)
    for (int Col = 0; Col < NumCols; ++Col) {
      long long Got = oracleValue(Row, Col);
      long long Want = Staged[index(Row, Col)].Expected;
      if (Got != Want)
        throw CheckpointError(
            CkptError::VerifyFailed,
            "cell (" + std::to_string(Row) + ", " + std::to_string(Col) +
                ") recomputed to " + std::to_string(Got) + ", checkpoint " +
                "says " + std::to_string(Want));
    }
  CycleFlag = Flag != 0;
  ++RT.stats().CkptRestores;
}

long long Spreadsheet::recomputeAllExhaustive() const {
  PassActive = true;
  PassMemo.assign(Grid.size(), 0);
  PassDone.assign(Grid.size(), 0);
  long long Sum = 0;
  for (int R = 0; R < NumRows; ++R)
    for (int C = 0; C < NumCols; ++C)
      Sum += oracleValue(R, C);
  PassActive = false;
  return Sum;
}

} // namespace alphonse::spreadsheet
