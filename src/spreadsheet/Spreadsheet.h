//===- Spreadsheet.h - Incremental spreadsheet ------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.2 of the paper: the attribute-grammar expression trees of
/// Section 7.1 extended into a spreadsheet. Each cell holds an expression
/// tree and a maintained value method; a CellExp production with two
/// integer terminal fields references another cell's value — "the use of
/// top-level data references and ... how one Alphonse program can be used
/// to construct another" (Algorithm 10).
///
/// Formulas are written in the FormulaParser language, e.g.
///   "cell(0,0) + cell(0,1) * 2"
///   "let x = cell(1,1) in x * x ni".
///
/// Divergence from the paper (documented): reference cycles, which the
/// paper leaves undefined (they would not terminate), are detected via the
/// dependency graph's re-entrant-depth signal (DepNode::reentrantDepth)
/// and evaluate to 0 with a cycle flag raised.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SPREADSHEET_SPREADSHEET_H
#define ALPHONSE_SPREADSHEET_SPREADSHEET_H

#include "attrgram/ExprTree.h"
#include "attrgram/FormulaParser.h"
#include "core/Alphonse.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace alphonse::spreadsheet {

/// A Rows x Cols grid of formula cells with incremental recalculation.
class Spreadsheet {
public:
  Spreadsheet(Runtime &RT, int Rows, int Cols);
  ~Spreadsheet();

  int rows() const { return NumRows; }
  int cols() const { return NumCols; }

  /// Parses \p Source and installs it as the formula of (\p Row, \p Col).
  /// \returns false (and records diagnostics) on a parse error; the cell
  /// keeps its previous formula in that case.
  bool setFormula(int Row, int Col, const std::string &Source);

  /// Sets the cell to a literal value. If the current formula is already a
  /// single literal, edits it in place (the cheapest possible change).
  void setLiteral(int Row, int Col, int Value);

  /// Removes the formula; empty cells evaluate to 0.
  void clearCell(int Row, int Col);

  /// One edit of an atomic batch (see setAll). An empty Formula clears
  /// the cell.
  struct CellEdit {
    int Row;
    int Col;
    std::string Formula;
  };

  /// Applies every edit as one transactional batch: either all edits
  /// commit together, or — on a parse error, an out-of-range target, a
  /// reference cycle introduced by the batch, or a fault during
  /// recalculation — none do, and every cell value is exactly as before
  /// the call. \returns true iff the batch committed. cycleDetected() is
  /// left unchanged by a rolled-back batch.
  bool setAll(const std::vector<CellEdit> &Edits);

  /// The maintained value of a cell (Algorithm 10's Cell.value()).
  int value(int Row, int Col);

  /// Recalculates pending edits under the runtime's default budget.
  void recalc() { RT.pump(); }

  /// Budgeted recalculation (DESIGN.md Section 11): propagates pending
  /// edits under \p B. If the budget runs out mid-wave, the returned
  /// outcome is degraded, unrepaired cells keep serving their
  /// last-quiescent values (flagged by valueIsStale), and a later recalc
  /// — or any unbudgeted pump — finishes the parked work.
  WaveOutcome recalc(const WaveBudget &B) { return RT.pump(B); }

  /// True while (\p Row, \p Col)'s value is stale: a budgeted recalc was
  /// cancelled before re-establishing it, so value() serves the
  /// last-quiescent result.
  bool valueIsStale(int Row, int Col) const;

  /// True once any evaluation encountered a reference cycle; cleared by
  /// clearCycleFlag(). Cells on a cycle evaluate to 0.
  bool cycleDetected() const { return CycleFlag; }
  void clearCycleFlag() { CycleFlag = false; }

  /// Parse diagnostics accumulated by setFormula failures.
  const DiagnosticEngine &diagnostics() const { return Diags; }

  /// Writes the sheet's durable state — dimensions, per-cell formula
  /// source, per-cell value, cycle flag — to \p Path crash-atomically.
  /// The formula trees themselves are pointer-keyed attrgram productions,
  /// so the checkpoint is structural: restore re-parses every formula and
  /// re-derives the trees instead of binding graph nodes (DESIGN.md
  /// Section 10).
  void saveCheckpoint(const std::string &Path);

  /// Rebuilds the sheet from \p Path: dimensions must match, every
  /// formula must re-parse, and every recomputed cell value must equal
  /// its captured value (a recompute-validate restore). Throws
  /// CheckpointError on any mismatch.
  void restoreCheckpoint(const std::string &Path);

  /// Exhaustive baseline for experiment E4: a conventional full
  /// recalculation evaluating every cell once (cross-cell references are
  /// memoized for the duration of the pass, as any non-incremental
  /// spreadsheet engine would), with no incremental machinery. \returns
  /// the sum of all cell values (a checksum the benchmark compares
  /// against the incremental path).
  long long recomputeAllExhaustive() const;

  /// Exhaustive evaluation of one cell (untracked). Outside a
  /// recomputeAllExhaustive() pass, nothing is memoized: cost is the full
  /// dependency cone of the cell.
  int oracleValue(int Row, int Col) const;

  Runtime &runtime() { return RT; }

private:
  friend class CellRefExp;

  size_t index(int Row, int Col) const;
  bool inRange(int Row, int Col) const {
    return Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols;
  }

  /// Incremental per-cell evaluation (the maintained method's body).
  int computeCellValue(int Row, int Col);

  /// Remembers the formula source installed at cell \p I (journaled
  /// inside a batch so a rolled-back setAll reverts it with the tree).
  void recordSource(size_t I, std::string Src);

  /// Incremental cell read used by CellRefExp (goes through the maintained
  /// method so the reference depends on one cell-value instance).
  int cellValue(int Row, int Col) { return CellVal(Row, Col); }

  attrgram::Exp *makeCellRef(int Row, int Col);

  Runtime &RT;
  int NumRows;
  int NumCols;
  DiagnosticEngine Diags;
  attrgram::ExprTree Tree;
  Maintained<int(int, int)> CellVal;
  /// Grid[i] holds the root of cell i's formula tree (nullptr = empty).
  std::vector<std::unique_ptr<Cell<attrgram::Exp *>>> Grid;
  /// The source text behind Grid[i] ("" = empty cell); what checkpoints
  /// persist, since the trees themselves are pointer-keyed.
  std::vector<std::string> Sources;
  /// Cycle detection for the *oracle* path only: cells currently being
  /// evaluated exhaustively. The incremental path reads the re-entrant
  /// depth of the cell's dependency-graph node instead (the graph's
  /// generic in-flight-cycle signal).
  mutable std::vector<char> InFlight;
  /// Per-pass memo for recomputeAllExhaustive().
  mutable std::vector<int> PassMemo;
  mutable std::vector<char> PassDone;
  mutable bool PassActive = false;
  bool CycleFlag = false;
};

} // namespace alphonse::spreadsheet

#endif // ALPHONSE_SPREADSHEET_SPREADSHEET_H
