//===- Runtime.h - Incremental runtime context ------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime context for Alphonse programs: the dependency graph, the
/// statistics block, and the CallStack of currently executing incremental
/// procedure instances (Section 4.3). One Runtime corresponds to one
/// transformed program; everything it manages is single-threaded.
///
/// The Runtime must outlive every Cell / Maintained / Cached registered
/// with it (declare it first).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_CORE_RUNTIME_H
#define ALPHONSE_CORE_RUNTIME_H

#include "graph/DepGraph.h"
#include "support/Statistics.h"

#include <array>
#include <cstdlib>
#include <vector>

namespace alphonse {

/// Owns the dependency graph and the incremental call stack.
class Runtime {
public:
  explicit Runtime(DepGraph::Config Cfg = DepGraph::Config())
      : Graph(Stats, applyEnvOverrides(Cfg)) {}

  /// Tag selecting the exact-config constructor below.
  struct ExactConfig {};

  /// Constructs with \p Cfg exactly as given — no ALPHONSE_AUDIT /
  /// ALPHONSE_JOBS environment overrides. Embeddings that manage many
  /// runtimes themselves (the session service) use this: a debugging env
  /// var must not silently hand every one of ten thousand sessions its
  /// own worker pool.
  Runtime(DepGraph::Config Cfg, ExactConfig) : Graph(Stats, Cfg) {}

  DepGraph &graph() { return Graph; }
  Statistics &stats() { return Stats; }

  /// Resets the statistics counters (the graph itself is untouched).
  void resetStats() { Stats.reset(); }

  /// Rebases the pool.high_water gauge to the graph's current slab
  /// reservation. Benches scope the gauge to a churn phase with this:
  /// reset after warm-up, then assert it stayed flat (zero steady-state
  /// slab growth, DESIGN.md §14).
  void resetPoolHighWater() { Graph.resetHighWater(); }

  /// The dependency-graph node of the most recently called incremental
  /// procedure still executing on the calling thread, or nullptr outside
  /// incremental execution and inside UncheckedScope frames (paper:
  /// top(CallStack)). Each evaluator thread has its own stack, so a wave
  /// worker's dependency recording never attributes an access to a frame
  /// pushed by a sibling thread. Frames hold generation-checked NodeIds,
  /// so a stale frame (its node died while on the stack) traps in debug
  /// builds instead of dereferencing a recycled slot.
  DepNode *currentProcedure() const {
    const std::vector<NodeId> &S = stack();
    if (S.empty() || !S.back())
      return nullptr;
    return &Graph.node(S.back());
  }

  /// True when storage accesses should record dependencies right now.
  bool inIncrementalCall() const { return currentProcedure() != nullptr; }

  /// Pushes an execution frame. \p Proc may be nullptr to open an
  /// unchecked region (Section 6.4) in which accesses record nothing.
  void pushCall(DepNode *Proc) {
    stack().push_back(Proc ? Proc->id() : NodeId());
  }

  /// Pops the innermost execution frame. Underflow means dependency
  /// recording has already been attributed to the wrong procedure, so it
  /// is a hard failure even in release builds (not just an assert).
  void popCall() {
    std::vector<NodeId> &S = stack();
    if (S.empty())
      fatalError("incremental call stack underflow: popCall() without a "
                 "matching pushCall()");
    S.pop_back();
  }

  /// Depth of the calling thread's incremental call stack (frames,
  /// including unchecked).
  size_t callDepth() const { return stack().size(); }

  /// The node half of the access(v) transformation (Algorithm 3): records
  /// that the currently executing procedure depends on \p Source.
  void recordAccess(DepNode &Source) {
    if (DepNode *Top = currentProcedure())
      Graph.addDependency(*Top, Source);
  }

  /// Forces evaluation of pending changes that could affect \p N
  /// (Algorithm 5's "IF SetSize(Inconsistent) > 0 THEN Evaluate").
  void ensureEvaluatedFor(DepNode &N) {
    if (Graph.hasPendingFor(N))
      Graph.evaluateFor(N);
  }

  /// Runs the evaluator over every partition. The mutator calls this when
  /// computation cycles are available (the paper's eager-evaluation hook:
  /// "the evaluation routine should be called whenever cycles are
  /// available"). Governed by the default budget (setDefaultBudget);
  /// unlimited unless the embedding configured one.
  void pump() { Graph.evaluateAll(); }

  /// Budgeted pump (DESIGN.md Section 11): propagates under \p B's
  /// deadline / step budget / memory ceiling. On exhaustion the wave is
  /// cooperatively cancelled, residual work stays parked for a later
  /// pump, affected values are stamped stale (Cell::isStale), and the
  /// degraded outcome is returned.
  WaveOutcome pump(const WaveBudget &B) { return Graph.evaluateAll(B); }

  /// Unbudgeted run-to-quiescence pump, regardless of any default budget:
  /// drains every parked residue and clears all stale marks. Checkpoint
  /// capture and batch opening use this — both need a truly quiescent
  /// graph.
  WaveOutcome pumpUnbounded() { return Graph.evaluateAll(WaveBudget()); }

  /// Budget applied by every un-annotated pump (0 fields = unbounded).
  void setDefaultBudget(const WaveBudget &B) { Graph.setDefaultBudget(B); }

  /// True while the runtime serves degraded results (stale values or a
  /// parked residue from a cancelled wave).
  bool degraded() const { return Graph.governor().degraded(); }

  //===--------------------------------------------------------------------===//
  // Transactional mutation batches (DESIGN.md "Transactions and recovery")
  //===--------------------------------------------------------------------===//

  /// Opens a mutation batch at a quiescent state: pumps any pending work
  /// first (the batch's rollback point must itself be quiescent), then
  /// starts journaling. Batches do not nest, and must not be opened from
  /// inside an incremental call.
  void beginBatch() {
    assert(callDepth() == 0 && "beginBatch() inside an incremental call");
    // The pre-batch pump must run to quiescence whatever the default
    // budget: the rollback point has to be a quiescent state.
    Graph.evaluateAll(WaveBudget());
    Graph.beginBatch();
  }

  /// Propagates the batch to quiescence and commits it. Any fault during
  /// the batch or the propagation rolls the whole batch back; \returns
  /// false then (graph().abortFault() tells why).
  bool commitBatch() { return Graph.commitBatch(); }

  /// Reverts every mutation since beginBatch(), restoring the pre-batch
  /// quiescent state.
  void rollbackBatch() { Graph.rollbackBatch(); }

  /// True while a batch is open.
  bool inBatch() const { return Graph.inBatch(); }

  /// The graph's commit/rollback epoch (advances once per batch outcome).
  uint64_t epoch() const { return Graph.epoch(); }

  /// RAII form of pushCall/popCall: the frame is popped even when the
  /// procedure body throws, keeping dependency attribution balanced
  /// through exception unwinding.
  class CallScope {
  public:
    CallScope(Runtime &RT, DepNode *Proc) : RT(RT) { RT.pushCall(Proc); }
    ~CallScope() { RT.popCall(); }

    CallScope(const CallScope &) = delete;
    CallScope &operator=(const CallScope &) = delete;

  private:
    Runtime &RT;
  };

private:
  /// Environment overrides applied at construction so deployed binaries
  /// can flip debug aids without recompiling. ALPHONSE_AUDIT (non-empty,
  /// not "0") enables Config::AuditAfterEvaluate; ALPHONSE_JOBS (a
  /// non-negative integer) sets Config::Workers, overriding whatever the
  /// embedding program configured (env wins over --jobs).
  static DepGraph::Config applyEnvOverrides(DepGraph::Config Cfg) {
    if (const char *V = std::getenv("ALPHONSE_AUDIT"))
      if (V[0] != '\0' && !(V[0] == '0' && V[1] == '\0'))
        Cfg.AuditAfterEvaluate = true;
    if (const char *V = std::getenv("ALPHONSE_JOBS"))
      if (V[0] != '\0') {
        char *End = nullptr;
        unsigned long N = std::strtoul(V, &End, 10);
        if (End && *End == '\0' && N <= kStatShards - 1)
          Cfg.Workers = static_cast<unsigned>(N);
        else if (End && *End == '\0')
          Cfg.Workers = kStatShards - 1;
      }
    return Cfg;
  }

  /// The calling thread's incremental call stack. Slot 0 is the main
  /// thread; wave workers index by their statistics shard id, so stacks
  /// are owner-exclusive without locking.
  std::vector<NodeId> &stack() { return CallStacks[statShardId()]; }
  const std::vector<NodeId> &stack() const {
    return CallStacks[statShardId()];
  }

  Statistics Stats;
  DepGraph Graph;
  std::array<std::vector<NodeId>, kStatShards> CallStacks;
};

/// RAII mutation batch: opens a batch on construction and rolls it back on
/// destruction unless commit() succeeded (or rollback() already ran), so
/// an exception thrown mid-batch cannot leave the graph half-updated.
///
///   Transaction Txn(RT);
///   A.set(1);
///   B.set(2);
///   if (!Txn.commit())        // Fault during propagation: already rolled
///     report(*RT.graph().abortFault()); // back, state is pre-batch.
class Transaction {
public:
  explicit Transaction(Runtime &RT) : RT(RT) { RT.beginBatch(); }

  ~Transaction() {
    if (!Done)
      RT.rollbackBatch();
  }

  Transaction(const Transaction &) = delete;
  Transaction &operator=(const Transaction &) = delete;

  /// Commits the batch; on a fault the batch is rolled back and this
  /// returns false. Either way the transaction is finished.
  bool commit() {
    assert(!Done && "commit() on a finished transaction");
    Done = true;
    return RT.commitBatch();
  }

  /// Rolls the batch back explicitly (the destructor then does nothing).
  void rollback() {
    assert(!Done && "rollback() on a finished transaction");
    Done = true;
    RT.rollbackBatch();
  }

  /// True once commit() or rollback() ran.
  bool finished() const { return Done; }

private:
  Runtime &RT;
  bool Done = false;
};

/// RAII form of the (*UNCHECKED*) pragma (Section 6.4): inside the scope,
/// storage reads and procedure calls made by the enclosing incremental
/// procedure record no dependencies. Procedures *called* inside the scope
/// still track their own internal dependencies normally.
class UncheckedScope {
public:
  explicit UncheckedScope(Runtime &RT) : RT(RT) { RT.pushCall(nullptr); }
  ~UncheckedScope() { RT.popCall(); }

  UncheckedScope(const UncheckedScope &) = delete;
  UncheckedScope &operator=(const UncheckedScope &) = delete;

private:
  Runtime &RT;
};

} // namespace alphonse

#endif // ALPHONSE_CORE_RUNTIME_H
