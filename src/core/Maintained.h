//===- Maintained.h - Maintained and cached procedures ----------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintained<R(Args...)> is the C++ embedding of the paper's
/// (*MAINTAINED*) and (*CACHED*) pragmas: an incremental procedure whose
/// calls go through the call(p, a1..ak) transformation of Algorithm 5.
///
/// Each distinct argument vector gets one dependency-graph node, stored in
/// the per-procedure argument table of Section 4.2 and indexed by the
/// argument tuple. Function caching is thereby integrated with quiescence
/// propagation, which lifts the classical combinator restriction: the body
/// may read global state (other Cells, other incremental procedures), and
/// the referenced-argument set R(p) is recorded dynamically as edges.
///
/// Restrictions on the body (paper Section 3.5, proved by the programmer):
///  - DET: deterministic given its arguments and referenced storage;
///  - TOP: reads/writes only tracked (Cell) or argument data, no hidden
///    static state;
///  - OBS (eager bodies only): side effects unobservable under spurious
///    re-execution.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_CORE_MAINTAINED_H
#define ALPHONSE_CORE_MAINTAINED_H

#include "core/Runtime.h"
#include "support/FaultInjector.h"
#include "support/HashCombine.h"

#include <cassert>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace alphonse {

template <typename Signature> class Maintained;

/// An incremental procedure with result type R and parameters Args....
///
/// R and each argument type must be copyable, equality-comparable, and
/// (for arguments) hashable via std::hash.
template <typename R, typename... Args> class Maintained<R(Args...)> {
  static_assert(!std::is_void_v<R>,
                "incremental procedures must return a comparable value");

public:
  using Body = std::function<R(Args...)>;
  using Key = std::tuple<std::decay_t<Args>...>;

  /// Wraps \p Fn as an incremental procedure. \p Strategy selects the
  /// DEMAND / EAGER pragma argument of Section 3.3.
  Maintained(Runtime &RT, Body Fn,
             EvalStrategy Strategy = EvalStrategy::Demand,
             std::string Name = "")
      : RT(&RT), Fn(std::move(Fn)), Strategy(Strategy),
        Name(std::move(Name)) {}

  Maintained(const Maintained &) = delete;
  Maintained &operator=(const Maintained &) = delete;

  /// The call transformation (Algorithm 5): find-or-create the instance
  /// node, force pending evaluation, record the caller's dependence, then
  /// either answer from the cache or (re-)execute.
  R operator()(Args... A) {
    Key K(A...);
    InstanceNode *N = nullptr;
    bool Existing = false;
    {
      // The argument table and LRU list are shared across evaluator
      // threads; the graph's conditional lock (free when serial)
      // serializes lookups and insertions during waves.
      DepGraph::StateGuard Guard(RT->graph());
      auto It = Table.find(K);
      if (It == Table.end()) {
        auto Owned = std::make_unique<InstanceNode>(RT->graph(), *this, K,
                                                    Strategy);
        N = Owned.get();
        N->setName(Name.empty() ? "proc" : Name);
        Table.emplace(std::move(K), std::move(Owned));
        touchLRU(*N);
        // A cache entry inserted inside a batch is dropped again on
        // rollback (journal entries touching the node were recorded later
        // and are undone first).
        if (RT->inBatch())
          RT->graph().logUndo(
              [this, DeadKey = N->K]() { eraseByKey(DeadKey); });
        enforceCapacity();
      } else {
        N = It->second.get();
        touchLRU(*N);
        Existing = true;
      }
    }
    // A wave worker must own N's partition before relying on its cached
    // state; contact with a sibling task's partition merges the two and
    // abandons this execution (RetryConflict).
    RT->graph().ensureWorkerAccess(*N, RT->currentProcedure());
    if (Existing) {
      // Algorithm 5 forces evaluation before reusing an existing node, so
      // that batched changes which affect this value are applied first.
      RT->ensureEvaluatedFor(*N);
    }
    if (RT->inIncrementalCall())
      RT->recordAccess(*N);
    if (N->isQuarantined()) {
      // The last recompute failed; surface the original fault to the
      // caller (an incremental caller is itself quarantined by its own
      // execute() frame, cascading the poison) instead of serving a stale
      // or missing cache entry.
      throw QuarantinedError(*RT->graph().fault(*N));
    }
    if (N->isExecuting()) {
      // Re-entrant call: the instance is already running further down the
      // stack (Algorithm 11's balance() does this after a rotation). Run
      // the body conventionally, attributing its reads to the in-flight
      // instance *without* retracting the edges recorded so far — a sound
      // over-approximation of R(p). The in-flight execution caches its own
      // final result when it completes. ReentrantScope bounds the nesting:
      // past Config::MaxReentrantDepth this is a dependency cycle (the
      // value demands itself) and its constructor throws CycleError.
      ReentrantScope Reentrant(RT->graph(), *N);
      Runtime::CallScope Call(*RT, N);
      return std::apply(Fn, N->K);
    }
    if (N->isConsistent()) {
      assert(N->Cached && "consistent instance with no cached value");
      ++RT->stats().CacheHits;
      return *N->Cached;
    }
    return execute(*N);
  }

  /// The dependency-graph node for these arguments, or nullptr if the
  /// procedure was never called with them (test/bench introspection).
  DepNode *instanceNode(Args... A) const {
    auto It = Table.find(Key(A...));
    return It == Table.end() ? nullptr : It->second.get();
  }

  /// Number of live (argument vector -> node) instances.
  size_t numInstances() const { return Table.size(); }

  /// True if a consistent cached value exists for these arguments (test
  /// introspection; records no dependency).
  bool hasCachedValue(Args... A) const {
    auto It = Table.find(Key(A...));
    return It != Table.end() && It->second->isConsistent();
  }

  /// True while the cached value for these arguments is stale: a budgeted
  /// pump was cancelled before re-establishing it, so calls serve the
  /// last-quiescent result (DESIGN.md Section 11). Records no dependency.
  bool isStale(Args... A) const {
    auto It = Table.find(Key(A...));
    return It != Table.end() && It->second->isStale();
  }

  /// Untracked read of the cached value for these arguments, forcing no
  /// evaluation (nullptr when the instance or its cache does not exist).
  /// The degraded-mode introspection path: callers inspecting stale
  /// (last-quiescent) values without paying for repair — operator()
  /// would evaluate pending work first.
  const R *peekCached(Args... A) const {
    auto It = Table.find(Key(A...));
    if (It == Table.end() || !It->second->Cached)
      return nullptr;
    return &*It->second->Cached;
  }

  /// Drops the instance for these arguments, if any. The instance must not
  /// be depended upon or executing. Use when an argument (say, a destroyed
  /// object) will never be passed again. Not transactional: do not call
  /// while a batch is open (undo closures may reference the instance).
  void erase(Args... A) { eraseByKey(Key(A...)); }

  /// Bounds the argument table (the pragma's cache-size argument); the
  /// least recently used instances that nothing depends on are evicted.
  /// 0 means unbounded.
  void setCapacity(size_t N) {
    Capacity = N;
    enforceCapacity();
  }

  /// Invokes \p F(key, cachedValue, node) on every live instance, in
  /// unspecified order. Checkpoint capture walks the argument table with
  /// this; records no dependencies and evaluates nothing.
  template <typename Fn> void forEachInstance(Fn F) const {
    for (const auto &KV : Table)
      F(KV.first, KV.second->Cached,
        static_cast<const DepNode &>(*KV.second));
  }

  /// Recreates the instance for \p K with \p Cached as its cached value,
  /// without executing the body — checkpoint restore rebuilds the
  /// argument table from the captured entries, then the GraphRestorer
  /// re-applies consistency flags and edges. The instance must not
  /// already exist. \returns the new node (for GraphRestorer::bind).
  DepNode &restoreInstance(Key K, std::optional<R> Cached) {
    assert(Table.find(K) == Table.end() &&
           "restoring an instance that already exists");
    auto Owned =
        std::make_unique<InstanceNode>(RT->graph(), *this, K, Strategy);
    InstanceNode *N = Owned.get();
    N->setName(Name.empty() ? "proc" : Name);
    N->Cached = std::move(Cached);
    Table.emplace(std::move(K), std::move(Owned));
    touchLRU(*N);
    return *N;
  }

  EvalStrategy strategy() const { return Strategy; }
  Runtime &runtime() const { return *RT; }

private:
  struct InstanceNode final : DepNode {
    InstanceNode(DepGraph &G, Maintained &Parent, Key K, EvalStrategy S)
        : DepNode(G, NodeKind::Procedure, S), Parent(&Parent),
          K(std::move(K)) {}

    /// Evaluator hook for eager instances: re-run the body and report
    /// whether the cached value changed.
    bool reexecute() override {
      std::optional<R> Old = Cached;
      R New = Parent->execute(*this);
      return !Old || !(*Old == New);
    }

    Maintained *Parent;
    Key K;
    std::optional<R> Cached;
    typename std::list<InstanceNode *>::iterator LRUSlot;
    bool InLRU = false;
  };

  /// The execution half of Algorithm 5: retract the old referenced-argument
  /// set, push this instance on the call stack, run the body with the
  /// stored arguments, cache and return the result. The protocol frames are
  /// RAII so a throwing body unwinds with the graph and call stack
  /// coherent; the instance is quarantined with the captured fault and the
  /// exception continues to the caller (cascading through incremental
  /// callers, which quarantine in their own frames).
  R execute(InstanceNode &N) {
    DepGraph &G = RT->graph();
    // The graph journals the structural half of a re-execution itself
    // (edges, flags, stamps); the cached value lives out here in the
    // typed layer, so its restore is an Action entry.
    if (G.inBatch())
      G.logUndo([&N, Old = N.Cached]() { N.Cached = Old; });
    G.removePredEdges(N);
    ExecutionScope Exec(G, N);
    Runtime::CallScope Call(*RT, &N);
    try {
      // Inject *inside* the protocol so a forced throw exercises the same
      // unwind path as a real body failure. A Diverge action re-marks the
      // node inconsistent mid-run, as if it wrote storage it reads.
      auto Inject = faultInjectionPoint(N.name());
      R Ret = std::apply(Fn, N.K);
      if (Inject == FaultInjector::Action::Diverge)
        G.selfInvalidate(N);
      N.Cached = Ret;
      return Ret;
    } catch (const RetryConflict &) {
      // Wave conflict: a scheduling event, not a program fault. Leave the
      // instance inconsistent (ExecutionScope's endExecution re-queues
      // eager nodes) so the merged partition's owner re-runs it.
      G.selfInvalidate(N);
      throw;
    } catch (...) {
      G.quarantine(N, captureCurrentFault(N.name()));
      throw;
    }
  }

  void touchLRU(InstanceNode &N) {
    if (N.InLRU)
      LRU.erase(N.LRUSlot);
    LRU.push_front(&N);
    N.LRUSlot = LRU.begin();
    N.InLRU = true;
  }

  void eraseByKey(const Key &K) {
    auto It = Table.find(K);
    if (It == Table.end())
      return;
    assert(!It->second->isExecuting() && "erasing an executing instance");
    if (It->second->InLRU)
      LRU.erase(It->second->LRUSlot);
    Table.erase(It);
  }

  void enforceCapacity() {
    if (Capacity == 0 || Table.size() <= Capacity)
      return;
    // Eviction is deferred while a batch is open: the journal holds
    // closures over instance nodes, which must stay alive until the batch
    // resolves. The next post-batch call (or setCapacity) trims the table.
    if (RT->inBatch())
      return;
    // Scan from the cold end; skip instances that are pinned (depended
    // upon or executing).
    auto It = LRU.end();
    while (Table.size() > Capacity && It != LRU.begin()) {
      --It;
      InstanceNode *N = *It;
      if (N == LRU.front())
        break; // Never evict the most recently used (the current call).
      if (N->isExecuting() || N->numSuccessors() != 0)
        continue;
      It = LRU.erase(It);
      Key Dead = N->K; // Copy: erasing the table entry destroys N.
      Table.erase(Dead);
    }
  }

  Runtime *RT;
  Body Fn;
  EvalStrategy Strategy;
  std::string Name;
  std::unordered_map<Key, std::unique_ptr<InstanceNode>,
                     TupleHash<std::decay_t<Args>...>>
      Table;
  std::list<InstanceNode *> LRU;
  size_t Capacity = 0;
};

/// The (*CACHED*) pragma: identical machinery (Section 4.2 integrates
/// function caching with quiescence propagation), kept as a distinct name
/// so client code mirrors the paper's vocabulary.
template <typename Signature> using Cached = Maintained<Signature>;

} // namespace alphonse

#endif // ALPHONSE_CORE_MAINTAINED_H
