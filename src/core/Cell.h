//===- Cell.h - Tracked storage locations -----------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cell<T> is a tracked storage location: the C++ embedding of the paper's
/// access(v) / modify(l, v) transformations (Algorithms 3 and 4). Where the
/// Alphonse translator rewrites every top-level read and write of a
/// Modula-3 program, a C++ program opts locations in by declaring them as
/// Cells (see the substitution table in DESIGN.md).
///
/// A Cell's dependency-graph node is created lazily at the first read
/// performed inside an incremental procedure, exactly as Algorithm 3
/// creates nodes on demand; until then reads and writes take the untracked
/// fast path (the effect Section 6.1's static optimization achieves).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_CORE_CELL_H
#define ALPHONSE_CORE_CELL_H

#include "core/Runtime.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <string>
#include <utility>

namespace alphonse {

/// A tracked storage location holding a value of type T.
///
/// T must be copyable and equality-comparable; the equality test implements
/// the value comparison of Algorithm 4 (variable-level quiescence).
template <typename T> class Cell {
public:
  /// Creates the cell with \p Initial contents. \p Name labels the node in
  /// debug dumps.
  explicit Cell(Runtime &RT, T Initial = T(), std::string Name = "")
      : RT(&RT), Live(std::move(Initial)), Name(std::move(Name)) {}

  Cell(const Cell &) = delete;
  Cell &operator=(const Cell &) = delete;

  ~Cell() { delete Node.load(std::memory_order_relaxed); }

  /// The access(v) transformation: returns the live value and, when an
  /// incremental procedure is executing, records its dependence on this
  /// location (creating the dependency-graph node on first use).
  const T &get() const {
    if (RT->inIncrementalCall())
      RT->recordAccess(ensureNode());
    return Live;
  }

  /// The modify(l, v) transformation: writes the live value; if the
  /// location has a dependency-graph node and the new value differs from
  /// the snapshot dependents last saw, queues the node for propagation.
  void set(T V) {
    // Inside a batch every write is journaled — even untracked ones,
    // since the location may become tracked later in the same batch and
    // rollback must still restore the value written before it.
    if (RT->inBatch())
      RT->graph().logUndo([this, Old = Live]() {
        Live = Old;
        if (StorageNode *SN = Node.load(std::memory_order_relaxed))
          SN->Snapshot = Old;
      });
    StorageNode *SN = Node.load(std::memory_order_relaxed);
    if (!SN) {
      // Never examined by an incremental procedure: plain store. This is
      // the fast path Section 6.1 wants for mutator-only data.
      Live = std::move(V);
      return;
    }
    Statistics &S = RT->stats();
    ++S.TrackedWrites;
    // Algorithm 4 begins with access(l): the writer (if any) depends on
    // the location it writes, so a later external write re-runs it.
    if (RT->inIncrementalCall())
      RT->recordAccess(*SN);
    bool Quiescent = (V == SN->Snapshot);
    Live = std::move(V);
    if (Quiescent && RT->graph().config().VariableCutoff) {
      ++S.QuiescentWrites;
      return;
    }
    RT->graph().markInconsistent(*SN);
  }

  Cell &operator=(T V) {
    set(std::move(V));
    return *this;
  }

  /// Untracked read: never records a dependency. For the mutator's own
  /// inspection, tests, and debugging.
  const T &peek() const { return Live; }

  /// True once the location is tracked (some incremental procedure read it).
  bool isTracked() const {
    return Node.load(std::memory_order_acquire) != nullptr;
  }

  /// The location's dependency-graph node, or nullptr while untracked.
  DepNode *node() const { return Node.load(std::memory_order_acquire); }

  /// True while this location's tracked snapshot is *stale*: a budgeted
  /// pump was cancelled before propagating a change that (transitively)
  /// reaches it, so dependent values computed from it reflect the last
  /// quiescent state. Cleared once a later pump repairs the cone.
  /// Untracked cells are never stale (peek() always reads live storage).
  bool isStale() const {
    DepNode *N = Node.load(std::memory_order_acquire);
    return N && N->isStale();
  }

  /// Creates the location's node now (outside any incremental call) and
  /// returns it. Checkpoint restore uses this to rebuild a cell that was
  /// tracked at capture without replaying the read that tracked it.
  DepNode &ensureTracked() { return ensureNode(); }

  Runtime &runtime() const { return *RT; }

private:
  struct StorageNode final : DepNode {
    StorageNode(DepGraph &G, const Cell &Owner)
        : DepNode(G, NodeKind::Storage), Owner(&Owner),
          Snapshot(Owner.Live) {}

    /// Reconciles the snapshot with live storage; the return value drives
    /// the quiescence cutoff in the evaluator. A fault injected here (test
    /// harness) quarantines the storage node like any other refresh failure.
    bool refreshStorage() override {
      faultInjectionPoint(name());
      bool Changed = !(Owner->Live == Snapshot);
      Snapshot = Owner->Live;
      return Changed;
    }

    const Cell *Owner;
    /// The value dependents observed at the last completed propagation.
    T Snapshot;
  };

  /// Lazily creates the node, double-checked: the unlocked acquire load
  /// is the hot path, and two wave workers racing on the first tracked
  /// read of one cell serialize on the graph's state lock.
  StorageNode &ensureNode() const {
    if (StorageNode *SN = Node.load(std::memory_order_acquire))
      return *SN;
    DepGraph::StateGuard Guard(RT->graph());
    if (StorageNode *SN = Node.load(std::memory_order_relaxed))
      return *SN; // A sibling worker won the race.
    auto *SN = new StorageNode(RT->graph(), *this);
    SN->setName(Name.empty() ? "cell" : Name);
    // A node created inside a batch is destroyed again on rollback (its
    // edges and journal references are undone first — they were recorded
    // later).
    if (RT->inBatch())
      RT->graph().logUndo([this]() {
        delete Node.exchange(nullptr, std::memory_order_relaxed);
      });
    Node.store(SN, std::memory_order_release);
    return *SN;
  }

  Runtime *RT;
  T Live;
  mutable std::atomic<StorageNode *> Node{nullptr};
  std::string Name;
};

} // namespace alphonse

#endif // ALPHONSE_CORE_CELL_H
