//===- Alphonse.h - Umbrella header for the Alphonse runtime ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience header pulling in the whole public incremental-computation
/// API: Runtime, Cell<T>, Maintained<Sig>, Cached<Sig>, UncheckedScope,
/// and EvalStrategy. See README.md for a quickstart.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_CORE_ALPHONSE_H
#define ALPHONSE_CORE_ALPHONSE_H

#include "core/Cell.h"
#include "core/Maintained.h"
#include "core/Runtime.h"

#endif // ALPHONSE_CORE_ALPHONSE_H
