//===- bench_transform.cpp - Experiment E12 -------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 6.1: "The uniform application of these tests would result in a
// substantial performance decrease. We use dataflow analysis to identify
// the many variables and procedures where the results of these tests are
// statically known." We compile the Algorithm 11 AVL program with and
// without the optimization and report (a) the fraction of operations left
// instrumented and (b) interpreter throughput on an insert/contains
// workload under both transformations (plus the front-end costs
// themselves).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/Parser.h"
#include "transform/Transform.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <random>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

// The Algorithm 11 program, identical to the test corpus copy.
static const char *AvlSource = R"(
TYPE Tree = OBJECT
  left, right : Tree;
  key : INTEGER;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
  (*MAINTAINED*) balance() : Tree := Balance;
END;
TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
  (*MAINTAINED*) balance := BalanceNil;
END;
VAR nil : Tree; root : Tree;
PROCEDURE Height(t : Tree) : INTEGER =
BEGIN RETURN max(t.left.height(), t.right.height()) + 1; END Height;
PROCEDURE HeightNil(t : Tree) : INTEGER = BEGIN RETURN 0; END HeightNil;
PROCEDURE Diff(t : Tree) : INTEGER =
BEGIN RETURN t.left.height() - t.right.height(); END Diff;
PROCEDURE RotateRight(t : Tree) : Tree =
VAR s, b : Tree;
BEGIN s := t.left; b := s.right; s.right := t; t.left := b; RETURN s;
END RotateRight;
PROCEDURE RotateLeft(t : Tree) : Tree =
VAR s, b : Tree;
BEGIN s := t.right; b := s.left; s.left := t; t.right := b; RETURN s;
END RotateLeft;
PROCEDURE Balance(t : Tree) : Tree =
VAR u : Tree;
BEGIN
  t.left := t.left.balance();
  t.right := t.right.balance();
  u := t;
  IF Diff(u) > 1 THEN
    IF Diff(u.left) < 0 THEN u.left := RotateLeft(u.left); END;
    u := RotateRight(u);
    RETURN u.balance();
  ELSIF Diff(u) < -1 THEN
    IF Diff(u.right) > 0 THEN u.right := RotateRight(u.right); END;
    u := RotateLeft(u);
    RETURN u.balance();
  END;
  RETURN u;
END Balance;
PROCEDURE BalanceNil(t : Tree) : Tree = BEGIN RETURN t; END BalanceNil;
PROCEDURE InitTree() = BEGIN nil := NEW(TreeNil); root := nil; END InitTree;
PROCEDURE Insert(k : INTEGER) =
VAR t, p : Tree;
BEGIN
  p := NEW(Tree);
  p.key := k;
  p.left := nil;
  p.right := nil;
  IF root = nil THEN root := p; RETURN; END;
  t := root;
  WHILE TRUE DO
    IF k = t.key THEN RETURN; END;
    IF k < t.key THEN
      IF t.left = nil THEN t.left := p; RETURN; END;
      t := t.left;
    ELSE
      IF t.right = nil THEN t.right := p; RETURN; END;
      t := t.right;
    END;
  END;
END Insert;
PROCEDURE Contains(k : INTEGER) : BOOLEAN =
VAR t : Tree;
BEGIN
  root := root.balance();
  t := root;
  WHILE t # nil DO
    IF k = t.key THEN RETURN TRUE; END;
    IF k < t.key THEN t := t.left; ELSE t := t.right; END;
  END;
  RETURN FALSE;
END Contains;
)";

namespace {

struct Compiled {
  Module M;
  SemaInfo Info;
  DiagnosticEngine Diags;
  transform::TransformStats Stats;
};

std::unique_ptr<Compiled> compileAvl(bool Optimized) {
  auto C = std::make_unique<Compiled>();
  C->M = parseModule(AvlSource, C->Diags);
  C->Info = analyze(C->M, C->Diags);
  assert(!C->Diags.hasErrors());
  transform::TransformOptions Opts;
  Opts.OptimizeLocalAccesses = Optimized;
  Opts.OptimizeCallChecks = Optimized;
  C->Stats = transform::transform(C->M, C->Info, Opts);
  return C;
}

void avlWorkload(benchmark::State &State, bool Optimized) {
  int N = static_cast<int>(State.range(0));
  auto C = compileAvl(Optimized);
  for (auto _ : State) {
    Interp I(C->M, C->Info, ExecMode::Alphonse);
    std::mt19937 Rng(9);
    I.call("InitTree");
    auto Start = std::chrono::steady_clock::now();
    long Hits = 0;
    for (int K = 0; K < N; ++K) {
      I.call("Insert", {Value::integer(static_cast<long>(Rng() % 10000))});
      if (K % 4 == 0)
        Hits += I.call("Contains",
                       {Value::integer(static_cast<long>(Rng() % 10000))})
                    .Bool;
    }
    benchmark::DoNotOptimize(Hits);
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
    assert(!I.failed());
  }
  State.counters["reads_wrapped_pct"] =
      100.0 * static_cast<double>(C->Stats.ReadsWrapped) /
      static_cast<double>(C->Stats.ReadsTotal);
  State.counters["calls_checked_pct"] =
      100.0 * static_cast<double>(C->Stats.CallsChecked) /
      static_cast<double>(C->Stats.CallsTotal);
  State.counters["n"] = static_cast<double>(N);
}

} // namespace

// E12a: the front end itself (lex+parse+sema+transform throughput).
static void BM_E12_CompileAvlProgram(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compileAvl(/*Optimized=*/true));
}
BENCHMARK(BM_E12_CompileAvlProgram);

// E12b: optimized transformation (Section 6.1 analysis applied).
static void BM_E12_OptimizedWorkload(benchmark::State &State) {
  avlWorkload(State, /*Optimized=*/true);
}
BENCHMARK(BM_E12_OptimizedWorkload)->Arg(200)->Arg(800)->UseManualTime();

// E12c: conservative transformation (every operation instrumented).
static void BM_E12_ConservativeWorkload(benchmark::State &State) {
  avlWorkload(State, /*Optimized=*/false);
}
BENCHMARK(BM_E12_ConservativeWorkload)->Arg(200)->Arg(800)->UseManualTime();

ALPHONSE_BENCH_MAIN();
