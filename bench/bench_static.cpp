//===- bench_static.cpp - Experiment E16 ----------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Static graph construction (paper Section 6.2, DESIGN.md Section 14), two
// claims measured on a plan-eligible Alphonse-L module (nullary cached
// procedures over globals):
//
//  1. Zero-allocation steady state. After warm-up, the pool high-water
//     mark is re-based (Runtime::resetPoolHighWater) and >= 10k churn
//     waves run — each wave writes a global and demands the whole cached
//     cone, so every re-execution tears down and re-records its edges.
//     All of that recycles through the pre-reserved slabs:
//     BM_StaticSteadyState reports pool_high_water_start/_end, and the
//     two must be equal (tools/validate_bench_json.py --flat-gauge).
//
//  2. The static call path is cheaper. incrementalCall on a plan slot is
//     an indexed load instead of a StateGuard + table find-or-emplace;
//     BM_StaticVsDynamicCalls interleaves identical cache-hit-heavy waves
//     through both paths and reports static_vs_dynamic = dynamic-ns /
//     static-ns (> 1 means the static path is faster).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/Parser.h"
#include "transform/Transform.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

namespace {

// Eight globals feeding a three-level cone of nullary cached procedures —
// every one of them plan-eligible (|R(p)| compile-time bounded), so the
// whole shape instantiates from one bulk reservation at load time.
const char *ConeProgram = R"(
VAR
  g0, g1, g2, g3, g4, g5, g6, g7 : INTEGER;

(*CACHED*) PROCEDURE C0() : INTEGER = BEGIN RETURN g0 + g1; END C0;
(*CACHED*) PROCEDURE C1() : INTEGER = BEGIN RETURN g1 + g2; END C1;
(*CACHED*) PROCEDURE C2() : INTEGER = BEGIN RETURN g2 + g3; END C2;
(*CACHED*) PROCEDURE C3() : INTEGER = BEGIN RETURN g3 + g4; END C3;
(*CACHED*) PROCEDURE C4() : INTEGER = BEGIN RETURN g4 + g5; END C4;
(*CACHED*) PROCEDURE C5() : INTEGER = BEGIN RETURN g5 + g6; END C5;
(*CACHED*) PROCEDURE C6() : INTEGER = BEGIN RETURN g6 + g7; END C6;
(*CACHED*) PROCEDURE C7() : INTEGER = BEGIN RETURN g7 + g0; END C7;

(*CACHED*) PROCEDURE Lo() : INTEGER =
BEGIN
  RETURN C0() + C1() + C2() + C3();
END Lo;

(*CACHED*) PROCEDURE Hi() : INTEGER =
BEGIN
  RETURN C4() + C5() + C6() + C7();
END Hi;

(*CACHED*) PROCEDURE All() : INTEGER =
BEGIN
  RETURN Lo() + Hi();
END All;

PROCEDURE Poke(i, v : INTEGER) =
BEGIN
  IF i = 0 THEN g0 := v;
  ELSIF i = 1 THEN g1 := v;
  ELSIF i = 2 THEN g2 := v;
  ELSIF i = 3 THEN g3 := v;
  ELSIF i = 4 THEN g4 := v;
  ELSIF i = 5 THEN g5 := v;
  ELSIF i = 6 THEN g6 := v;
  ELSE g7 := v;
  END;
END Poke;
)";

struct CompiledProgram {
  Module M;
  SemaInfo Info;
  DiagnosticEngine Diags;
};

std::unique_ptr<CompiledProgram> compileProgram(const char *Source) {
  auto C = std::make_unique<CompiledProgram>();
  C->M = parseModule(Source, C->Diags);
  C->Info = analyze(C->M, C->Diags);
  assert(!C->Diags.hasErrors());
  transform::transform(C->M, C->Info, transform::TransformOptions());
  return C;
}

std::unique_ptr<Interp> makeInterp(const CompiledProgram &C, bool Static) {
  DepGraph::Config Cfg;
  return std::make_unique<Interp>(C.M, C.Info, ExecMode::Alphonse, Cfg,
                                  /*EnableBytecode=*/true, Static);
}

/// One churn wave: dirty one global, then demand the full cone plus every
/// leaf — one re-execution cascade (edge teardown + re-record) and ten
/// cache-hit incremental calls per wave.
long wave(Interp &I, long Tick) {
  I.call("Poke", {Value::integer(Tick % 8), Value::integer(Tick)});
  long S = I.call("All").Int;
  S += I.call("Lo").Int + I.call("Hi").Int;
  for (const char *Leaf : {"C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7"})
    S += I.call(Leaf).Int;
  return S;
}

/// Claim 1: after warm-up, >= 10k waves of churn grow nothing. Fixed
/// iteration count so the steady-state window is the acceptance window.
void BM_StaticSteadyState(benchmark::State &State) {
  auto C = compileProgram(ConeProgram);
  auto I = makeInterp(*C, /*Static=*/true);
  long Tick = 1;
  // Warm-up: materialize every instance, cycle each global at least once
  // (so edge teardown has recycled slots and the free-list vectors have
  // their steady capacity), then re-base the high-water mark.
  for (int W = 0; W < 256; ++W)
    benchmark::DoNotOptimize(wave(*I, Tick++));
  assert(!I->failed());
  I->runtime().resetPoolHighWater();
  const uint64_t Start = I->runtime().stats().PoolHighWater.total();
  const uint64_t Calls0 = I->runtime().stats().StaticCalls.total();

  long Sink = 0;
  for (auto _ : State)
    Sink += wave(*I, Tick++);
  benchmark::DoNotOptimize(Sink);

  State.counters["pool_high_water_start"] = static_cast<double>(Start);
  State.counters["pool_high_water_end"] =
      static_cast<double>(I->runtime().stats().PoolHighWater.total());
  State.counters["waves"] = static_cast<double>(Tick - 257);
  State.counters["static_calls"] = static_cast<double>(
      I->runtime().stats().StaticCalls.total() - Calls0);
}
BENCHMARK(BM_StaticSteadyState)
    ->Iterations(10000)
    ->Unit(benchmark::kMicrosecond);

/// Claim 2: interleaved identical waves through the static and dynamic
/// call paths; static_vs_dynamic > 1 means the indexed lookup beats the
/// guarded find-or-emplace.
void BM_StaticVsDynamicCalls(benchmark::State &State) {
  auto C = compileProgram(ConeProgram);
  auto St = makeInterp(*C, /*Static=*/true);
  auto Dy = makeInterp(*C, /*Static=*/false);
  long TickS = 1, TickD = 1;
  for (int W = 0; W < 64; ++W) {
    benchmark::DoNotOptimize(wave(*St, TickS++));
    benchmark::DoNotOptimize(wave(*Dy, TickD++));
  }
  double StNs = 0, DyNs = 0;
  using Clock = std::chrono::steady_clock;
  long Sink = 0;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Sink += wave(*St, TickS++);
    auto T1 = Clock::now();
    State.PauseTiming();
    auto T2 = Clock::now();
    Sink += wave(*Dy, TickD++);
    auto T3 = Clock::now();
    StNs += std::chrono::duration<double, std::nano>(T1 - T0).count();
    DyNs += std::chrono::duration<double, std::nano>(T3 - T2).count();
    State.ResumeTiming();
  }
  benchmark::DoNotOptimize(Sink);
  State.counters["static_vs_dynamic"] = StNs > 0 ? DyNs / StNs : 0;
}
BENCHMARK(BM_StaticVsDynamicCalls)->Unit(benchmark::kMicrosecond);

/// Construction cost context: building the interpreter with the shape
/// pre-instantiated vs. dynamic lazy construction plus the first full
/// demand. Static pays reservation up front; the counter reports the
/// ratio of first-answer latencies (dynamic / static).
void BM_StaticFirstAnswer(benchmark::State &State) {
  auto C = compileProgram(ConeProgram);
  double StNs = 0, DyNs = 0;
  using Clock = std::chrono::steady_clock;
  for (auto _ : State) {
    auto T0 = Clock::now();
    auto St = makeInterp(*C, /*Static=*/true);
    benchmark::DoNotOptimize(St->call("All").Int);
    auto T1 = Clock::now();
    State.PauseTiming();
    auto T2 = Clock::now();
    auto Dy = makeInterp(*C, /*Static=*/false);
    benchmark::DoNotOptimize(Dy->call("All").Int);
    auto T3 = Clock::now();
    StNs += std::chrono::duration<double, std::nano>(T1 - T0).count();
    DyNs += std::chrono::duration<double, std::nano>(T3 - T2).count();
    State.ResumeTiming();
  }
  State.counters["first_answer_dyn_vs_static"] = StNs > 0 ? DyNs / StNs : 0;
}
BENCHMARK(BM_StaticFirstAnswer)->Unit(benchmark::kMicrosecond);

} // namespace

ALPHONSE_BENCH_MAIN();
