//===- bench_attrgram.cpp - Experiment E5 ---------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.1 / Section 10: Alphonse subsumes incremental attribute
// grammar systems. After a small edit to an expression tree, incremental
// reattribution re-runs only the edit's spine (O(log n) for a balanced
// tree), while full reattribution pays O(n). A deep let-nest edit of the
// outermost binding is the worst case: every environment attribute
// changes, so the incremental pass degenerates to the exhaustive one
// times the bookkeeping constant.
//
//===----------------------------------------------------------------------===//

#include "attrgram/ExprTree.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace alphonse;
using namespace alphonse::attrgram;

namespace {

/// A balanced Plus-tree over N literals, bound inside one let so the
/// environment machinery participates:  let base = 1 in base + SUM ni.
struct WideProgram {
  RootExp *Root = nullptr;
  std::vector<IntExp *> Leaves;
};

WideProgram buildWide(ExprTree &T, int N) {
  WideProgram P;
  std::vector<Exp *> Level;
  for (int I = 0; I < N; ++I) {
    IntExp *L = T.makeInt(I % 10);
    P.Leaves.push_back(L);
    Level.push_back(L);
  }
  while (Level.size() > 1) {
    std::vector<Exp *> Next;
    for (size_t I = 0; I + 1 < Level.size(); I += 2)
      Next.push_back(T.makePlus(Level[I], Level[I + 1]));
    if (Level.size() % 2 != 0)
      Next.push_back(Level.back());
    Level = std::move(Next);
  }
  Exp *Body = T.makePlus(T.makeId("base"), Level[0]);
  P.Root = T.makeRoot(T.makeLet("base", T.makeInt(1), Body));
  return P;
}

/// Deep let nest:  let v0 = LIT in let v1 = v0+1 in ... in v_{D-1} ni...
struct DeepProgram {
  RootExp *Root = nullptr;
  IntExp *BaseLit = nullptr;
};

DeepProgram buildDeep(ExprTree &T, int Depth) {
  DeepProgram P;
  Exp *Cur = T.makeId("v" + std::to_string(Depth - 1));
  for (int I = Depth - 1; I >= 0; --I) {
    Exp *Bind;
    if (I == 0) {
      P.BaseLit = T.makeInt(1);
      Bind = P.BaseLit;
    } else {
      Bind = T.makePlus(T.makeId("v" + std::to_string(I - 1)), T.makeInt(1));
    }
    Cur = T.makeLet("v" + std::to_string(I), Bind, Cur);
  }
  P.Root = T.makeRoot(Cur);
  return P;
}

} // namespace

// E5a: one leaf edit in a balanced tree of N literals — incremental
// reattribution re-runs the leaf-to-root spine, O(log N).
static void BM_E5_IncrementalLeafEdit(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Runtime RT;
  ExprTree T(RT);
  WideProgram P = buildWide(T, N);
  T.value(P.Root);
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    P.Leaves[0]->Lit.set(++Tick % 97);
    benchmark::DoNotOptimize(T.value(P.Root));
  }
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E5_IncrementalLeafEdit)->Arg(64)->Arg(512)->Arg(4096)->Arg(16384);

// E5b: the same edit answered by exhaustive attribution from scratch,
// O(N).
static void BM_E5_ExhaustiveLeafEdit(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Runtime RT;
  ExprTree T(RT);
  WideProgram P = buildWide(T, N);
  int Tick = 0;
  for (auto _ : State) {
    P.Leaves[0]->Lit.set(++Tick % 97);
    benchmark::DoNotOptimize(T.oracleValue(P.Root));
  }
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E5_ExhaustiveLeafEdit)->Arg(64)->Arg(512)->Arg(4096)->Arg(16384);

// E5c: worst case — editing the outermost binding of a deep let nest
// changes every environment; incremental cost ≈ exhaustive cost times
// the bookkeeping constant.
static void BM_E5_WorstCaseBindingEdit(benchmark::State &State) {
  int Depth = static_cast<int>(State.range(0));
  Runtime RT;
  ExprTree T(RT);
  DeepProgram P = buildDeep(T, Depth);
  T.value(P.Root);
  int Tick = 0;
  for (auto _ : State) {
    P.BaseLit->Lit.set(++Tick);
    benchmark::DoNotOptimize(T.value(P.Root));
  }
  State.counters["depth"] = static_cast<double>(Depth);
}
BENCHMARK(BM_E5_WorstCaseBindingEdit)->Arg(8)->Arg(32)->Arg(128);

// E5d: the exhaustive pass for the deep nest (the E5c baseline).
static void BM_E5_WorstCaseExhaustive(benchmark::State &State) {
  int Depth = static_cast<int>(State.range(0));
  Runtime RT;
  ExprTree T(RT);
  DeepProgram P = buildDeep(T, Depth);
  int Tick = 0;
  for (auto _ : State) {
    P.BaseLit->Lit.set(++Tick);
    benchmark::DoNotOptimize(T.oracleValue(P.Root));
  }
  State.counters["depth"] = static_cast<double>(Depth);
}
BENCHMARK(BM_E5_WorstCaseExhaustive)->Arg(8)->Arg(32)->Arg(128);

ALPHONSE_BENCH_MAIN();
