//===- bench_batching.cpp - Experiment E3 ---------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 3.4: "Changes to many pointers in the tree are batched by the
// evaluation algorithm and result in O(|AFFECTED|) computations" — the
// evaluator runs once at the next demand instead of once per change.
//
//  E3a: K leaf extensions per batch, one demand: Alphonse cost tracks
//       |AFFECTED| (the K new subtrees plus changed ancestors), not
//       K x path-length.
//  E3b: K cancelling change pairs (attach + detach) per batch: the batch
//       is a net no-op, so Alphonse does O(1) work at the demand, while
//       the hand-coded eager repair tree pays the path on every change —
//       it cannot batch.
//  E3c: the eager hand-coded baseline for E3a's workload.
//
// All scenarios run in steady state: each batch is undone by the next
// half-batch, so no per-iteration tree rebuilding is needed.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "trees/ManualHeightTree.h"

#include <benchmark/benchmark.h>

using namespace alphonse;
using namespace alphonse::bench;
using trees::HeightTree;
using trees::ManualHeightTree;

namespace {
constexpr size_t TreeNodes = 8191; // 13 levels, 4096 leaves.
constexpr size_t FirstLeaf = TreeNodes / 2;
} // namespace

// E3a: K growth changes, one demand; next iteration undoes them. The
// execs/batch counter is |AFFECTED| for the half-batches, averaged.
static void BM_E3_BatchedChanges(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, TreeNodes);
  Tree.height(Nodes[0]);
  std::vector<HeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  bool Attached = false;
  RT.resetStats();
  for (auto _ : State) {
    for (size_t I = 0; I < K; ++I)
      Tree.setLeft(Nodes[FirstLeaf + I],
                   Attached ? Tree.nil() : Fresh[I]);
    Attached = !Attached;
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
  }
  State.counters["execs/batch"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["k"] = static_cast<double>(K);
}
BENCHMARK(BM_E3_BatchedChanges)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// E3b: K attach+detach pairs per batch — a net no-op the evaluator
// recognizes wholesale (variable-level quiescence at each touched cell).
static void BM_E3_CancellingChanges(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, TreeNodes);
  Tree.height(Nodes[0]);
  std::vector<HeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  RT.resetStats();
  for (auto _ : State) {
    for (size_t I = 0; I < K; ++I) {
      Tree.setLeft(Nodes[FirstLeaf + I], Fresh[I]);
      Tree.setLeft(Nodes[FirstLeaf + I], Tree.nil());
    }
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
  }
  State.counters["execs/batch"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["k"] = static_cast<double>(K);
}
BENCHMARK(BM_E3_CancellingChanges)->Arg(1)->Arg(16)->Arg(256);

// E3c: the eager hand-coded repair on E3a's workload: it updates heights
// on every single change (no batching is expressible).
static void BM_E3_ManualPerChange(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  ManualHeightTree Tree;
  std::vector<ManualHeightTree::Node *> Nodes;
  for (size_t I = 0; I < TreeNodes; ++I)
    Nodes.push_back(Tree.makeNode());
  for (size_t I = 0; I < TreeNodes; ++I) {
    if (2 * I + 1 < TreeNodes)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < TreeNodes)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }
  std::vector<ManualHeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  bool Attached = false;
  uint64_t Before = Tree.updateCount();
  for (auto _ : State) {
    for (size_t I = 0; I < K; ++I)
      Tree.setLeft(Nodes[FirstLeaf + I], Attached ? nullptr : Fresh[I]);
    Attached = !Attached;
    benchmark::DoNotOptimize(ManualHeightTree::height(Nodes[0]));
  }
  State.counters["updates/batch"] = benchmark::Counter(
      static_cast<double>(Tree.updateCount() - Before) /
      static_cast<double>(State.iterations()));
  State.counters["k"] = static_cast<double>(K);
}
BENCHMARK(BM_E3_ManualPerChange)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// E3d: the eager hand-coded repair on E3b's cancelling workload: 2K path
// repairs for zero net change.
static void BM_E3_ManualCancelling(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  ManualHeightTree Tree;
  std::vector<ManualHeightTree::Node *> Nodes;
  for (size_t I = 0; I < TreeNodes; ++I)
    Nodes.push_back(Tree.makeNode());
  for (size_t I = 0; I < TreeNodes; ++I) {
    if (2 * I + 1 < TreeNodes)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < TreeNodes)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }
  std::vector<ManualHeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  uint64_t Before = Tree.updateCount();
  for (auto _ : State) {
    for (size_t I = 0; I < K; ++I) {
      Tree.setLeft(Nodes[FirstLeaf + I], Fresh[I]);
      Tree.setLeft(Nodes[FirstLeaf + I], nullptr);
    }
    benchmark::DoNotOptimize(ManualHeightTree::height(Nodes[0]));
  }
  State.counters["updates/batch"] = benchmark::Counter(
      static_cast<double>(Tree.updateCount() - Before) /
      static_cast<double>(State.iterations()));
  State.counters["k"] = static_cast<double>(K);
}
BENCHMARK(BM_E3_ManualCancelling)->Arg(1)->Arg(16)->Arg(256);

ALPHONSE_BENCH_MAIN();
