//===- bench_unchecked.cpp - Experiment E10 -------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 6.4: "consider a lookup procedure in a balanced search tree,
// where the programmer can often show that the lookup is dependent upon
// the found item, but not dependent upon the log(n) access operations
// needed to locate it." With (*UNCHECKED*) descent, each lookup records
// O(1) dependencies instead of O(log n), and unrelated structural churn
// does not invalidate cached lookups.
//
//===----------------------------------------------------------------------===//

#include "trees/AvlTree.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace alphonse;
using trees::AvlTree;

namespace {

void lookupChurnScenario(benchmark::State &State, bool Unchecked) {
  int N = static_cast<int>(State.range(0));
  Runtime RT;
  AvlTree T(RT, Unchecked);
  for (int K = 0; K < N; ++K)
    T.insert(K * 2); // Even keys.
  T.rebalance();
  // Warm a working set of cached lookups.
  constexpr int WorkingSet = 64;
  for (int K = 0; K < WorkingSet; ++K)
    T.lookup(K * 2);
  // Descending inserts keep rotating the left spine — including, every
  // few steps, the root itself. A tracked lookup depends on the root and
  // descent pointers and is invalidated by those rotations even though
  // its found node never moves; the unchecked lookup is not.
  int Falling = -1;
  RT.resetStats();
  for (auto _ : State) {
    T.insert(Falling);
    Falling -= 2;
    // ... then re-demand the whole lookup working set.
    long Hits = 0;
    for (int K = 0; K < WorkingSet; ++K)
      Hits += T.lookup(K * 2) ? 1 : 0;
    benchmark::DoNotOptimize(Hits);
  }
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["deps_of_lookup0"] =
      static_cast<double>(T.lookupDependencyCount(0));
  State.counters["n"] = static_cast<double>(N);
}

} // namespace

// E10a: tracked lookups — each insert's rebalancing can touch descent
// paths, invalidating cached lookups.
static void BM_E10_TrackedLookups(benchmark::State &State) {
  lookupChurnScenario(State, /*Unchecked=*/false);
}
BENCHMARK(BM_E10_TrackedLookups)->Arg(512)->Arg(2048)->Arg(8192);

// E10b: unchecked lookups — dependent on the found item only.
static void BM_E10_UncheckedLookups(benchmark::State &State) {
  lookupChurnScenario(State, /*Unchecked=*/true);
}
BENCHMARK(BM_E10_UncheckedLookups)->Arg(512)->Arg(2048)->Arg(8192);

ALPHONSE_BENCH_MAIN();
