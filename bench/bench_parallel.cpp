//===- bench_parallel.cpp - Parallel quiescence propagation ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Measures the parallel propagation scheduler (DepGraph::Config::Workers)
// against the serial evaluator on workloads made of many independent
// graph partitions — the shape Section 6.3's partitioned inconsistent
// sets were designed for, drained concurrently instead of in sequence.
//
// Three workloads, each swept over worker counts {0 (serial), 2, 4, 8}:
//
//   * WideDagCpu      — a wide DAG of independent eager chains whose
//                       stage bodies are pure CPU (an LCG spin). Speedup
//                       here needs real hardware parallelism; on a
//                       single-core host expect ~1x (the JSON records
//                       host_concurrency so readers can tell).
//   * WideDagLatency  — the same shape, but stage bodies block ~200us
//                       (simulating a backend fetch). Workers overlap the
//                       stalls, so this shows speedup even on one core.
//   * Spreadsheet     — a grid of formula cells with one eager per-column
//                       aggregator; each column is an independent
//                       partition, each edit-and-quiesce cycle
//                       re-executes every aggregator.
//
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "spreadsheet/Spreadsheet.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace alphonse;

namespace {

/// An independent eager chain: stage[i] = f(stage[i-1]) over a base cell.
/// Each chain is its own graph partition (no cross-chain dependencies).
struct Chain {
  Chain(Runtime &RT, int Len, int SpinIters, int SleepUs,
        const std::string &Name)
      : Base(std::make_unique<Cell<int>>(RT, 0, Name + ".base")) {
    for (int I = 0; I < Len; ++I) {
      Cell<int> *B = Base.get();
      Maintained<int()> *Prev = Stages.empty() ? nullptr : Stages.back().get();
      Stages.push_back(std::make_unique<Maintained<int()>>(
          RT,
          [B, Prev, SpinIters, SleepUs] {
            int V = Prev ? (*Prev)() : B->get();
            if (SleepUs > 0)
              std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
            unsigned X = static_cast<unsigned>(V);
            for (int K = 0; K < SpinIters; ++K)
              X = X * 1664525u + 1013904223u;
            benchmark::DoNotOptimize(X);
            return V + 1;
          },
          EvalStrategy::Eager, Name + ".stage"));
    }
  }
  int demand() { return (*Stages.back())(); }

  std::unique_ptr<Cell<int>> Base;
  std::vector<std::unique_ptr<Maintained<int()>>> Stages;
};

/// Mutates every chain base, then pumps to quiescence; with Workers > 0
/// the pump drains the independent partitions on the worker pool.
void runWideDag(benchmark::State &State, int NumChains, int Len,
                int SpinIters, int SleepUs) {
  unsigned Workers = static_cast<unsigned>(State.range(0));
  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  Runtime RT(Cfg);
  std::vector<std::unique_ptr<Chain>> Chains;
  for (int I = 0; I < NumChains; ++I)
    Chains.push_back(std::make_unique<Chain>(
        RT, Len, SpinIters, SleepUs, "c" + std::to_string(I)));
  for (auto &C : Chains)
    C->demand(); // First demand builds the edges (untimed).
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    ++Tick;
    for (auto &C : Chains)
      C->Base->set(Tick);
    RT.pump();
  }
  for (auto &C : Chains)
    benchmark::DoNotOptimize(C->demand());
  State.counters["workers"] = static_cast<double>(Workers);
  State.counters["partitions_drained"] =
      static_cast<double>(RT.stats().PropPartitionsDrained);
  State.counters["conflicts"] = static_cast<double>(RT.stats().PropConflicts);
}

// CPU-bound wide DAG: 32 chains x 4 stages, ~500 LCG steps per stage.
void BM_WideDagCpu(benchmark::State &State) {
  runWideDag(State, /*NumChains=*/32, /*Len=*/4, /*SpinIters=*/500,
             /*SleepUs=*/0);
}
BENCHMARK(BM_WideDagCpu)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

// Latency-bound wide DAG: 8 chains x 1 stage, each stage blocked ~200us.
// Serial cost is ~1.6ms per edit cycle; workers overlap the stalls.
void BM_WideDagLatency(benchmark::State &State) {
  runWideDag(State, /*NumChains=*/8, /*Len=*/1, /*SpinIters=*/0,
             /*SleepUs=*/200);
}
BENCHMARK(BM_WideDagLatency)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Spreadsheet workload: an 8x8 grid of arithmetic formulas plus one
/// eager aggregator per column summing that column through the
/// spreadsheet's maintained cell-value method. Columns never reference
/// each other, so each aggregator (and the 8 cells it reads) is an
/// independent partition.
void BM_Spreadsheet(benchmark::State &State) {
  unsigned Workers = static_cast<unsigned>(State.range(0));
  constexpr int Rows = 8, Cols = 8;
  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  Runtime RT(Cfg);
  spreadsheet::Spreadsheet Sheet(RT, Rows, Cols);
  // Row 0 of each column is a literal (edited in place each cycle); the
  // other rows reference it through a moderately deep formula, so every
  // cell recompute does real work and each column is one partition.
  std::string Deep;
  for (int I = 2; I <= 24; ++I)
    Deep += " + " + std::to_string(I) + " * 2";
  for (int C = 0; C < Cols; ++C) {
    Sheet.setLiteral(0, C, 1);
    for (int R = 1; R < Rows; ++R)
      Sheet.setFormula(R, C, "cell(0," + std::to_string(C) + ")" + Deep);
  }
  std::vector<std::unique_ptr<Maintained<int()>>> ColSums;
  for (int C = 0; C < Cols; ++C)
    ColSums.push_back(std::make_unique<Maintained<int()>>(
        RT,
        [&Sheet, C] {
          int Sum = 0;
          for (int R = 0; R < Rows; ++R)
            Sum += Sheet.value(R, C);
          return Sum;
        },
        EvalStrategy::Eager, "colsum"));
  for (auto &CS : ColSums)
    (*CS)();
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    ++Tick;
    // One in-place literal edit per column dirties every partition.
    for (int C = 0; C < Cols; ++C)
      Sheet.setLiteral(0, C, Tick);
    RT.pump();
  }
  for (auto &CS : ColSums)
    benchmark::DoNotOptimize((*CS)());
  State.counters["workers"] = static_cast<double>(Workers);
  State.counters["partitions_drained"] =
      static_cast<double>(RT.stats().PropPartitionsDrained);
  State.counters["conflicts"] = static_cast<double>(RT.stats().PropConflicts);
}
BENCHMARK(BM_Spreadsheet)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

} // namespace

ALPHONSE_BENCH_MAIN();
