//===- bench_governor.cpp - Experiment E13: governed propagation ----------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Resource-governed propagation (DESIGN.md Section 11):
//
//  E13a: the governance layer is free when unused — a pump under an
//        unlimited budget (no boundary checks armed) must stay within a
//        few percent of the classic ungoverned pump, and a pump whose
//        budget is enormous (checks armed at every evaluation boundary
//        but never tripping) bounds the worst-case check overhead.
//
//  E13b: a wall-clock deadline bounds wave latency — under sustained
//        overload (every wave is cut short, residue stays parked) the
//        p99 budgeted-wave latency tracks the deadline, not the size of
//        the backlog. Reported as p50/p99/max microsecond counters next
//        to the configured deadline.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Alphonse.h"
#include "support/Budget.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

using namespace alphonse;

namespace {

/// A linear eager chain rooted at one source cell: the steady workload
/// every E13 variant pumps. Returns the chain so it outlives the caller's
/// loop (nodes hold the closures).
struct ChainFixture {
  ChainFixture(Runtime &RT, int Stages) : Src(RT, 0, "bench.src") {
    Stage.reserve(Stages);
    for (int I = 0; I < Stages; ++I) {
      Cell<int> *S = &Src;
      Maintained<int()> *Prev = Stage.empty() ? nullptr : Stage.back().get();
      Stage.push_back(std::make_unique<Maintained<int()>>(
          RT, [S, Prev] { return (Prev ? (*Prev)() : S->get()) + 1; },
          EvalStrategy::Eager, "bench.n" + std::to_string(I)));
      (*Stage.back())();
    }
  }
  Cell<int> Src;
  std::vector<std::unique_ptr<Maintained<int()>>> Stage;
};

} // namespace

// E13a: one edit + full repair wave per iteration, three governance
// modes over the identical workload:
//   /0 ungoverned      — classic pump(), no budget anywhere
//   /1 unlimited       — governed wave, unlimited budget (checks skipped)
//   /2 armed-no-trip   — governed wave, huge budget (checks at every
//                        evaluation boundary, never tripping)
static void BM_E13a_GovernedPumpOverhead(benchmark::State &State) {
  int Mode = static_cast<int>(State.range(0));
  Runtime RT;
  ChainFixture Chain(RT, 256);
  RT.pumpUnbounded();
  WaveBudget Armed;
  Armed.StepBudget = UINT64_MAX / 2;
  Armed.DeadlineUs = UINT64_MAX / 2;
  int Edit = 0;
  for (auto _ : State) {
    Chain.Src.set(++Edit);
    switch (Mode) {
    case 0:
      RT.pump();
      break;
    case 1:
      benchmark::DoNotOptimize(RT.pump(WaveBudget()));
      break;
    default:
      benchmark::DoNotOptimize(RT.pump(Armed));
      break;
    }
  }
  State.counters["steps/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().EvalSteps.total()) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(BM_E13a_GovernedPumpOverhead)->Arg(0)->Arg(1)->Arg(2);

// E13b: sustained overload under a deadline. The chain is far too long to
// repair within one deadline, and the source changes every iteration, so
// every wave degrades and parks residue — the steady state the governor
// exists for. The measured latency is the budgeted wave alone; p50/p99/max
// land in the counters so BENCH_governor.json documents that p99 tracks
// the deadline while the backlog stays graph-sized.
static void BM_E13b_DeadlineBoundedWave(benchmark::State &State) {
  uint64_t DeadlineUs = static_cast<uint64_t>(State.range(0));
  Runtime RT;
  ChainFixture Chain(RT, 8192);
  RT.pumpUnbounded();
  WaveBudget B = WaveBudget::deadline(DeadlineUs);
  std::vector<double> WaveUs;
  WaveUs.reserve(4096);
  int Edit = 0;
  for (auto _ : State) {
    Chain.Src.set(++Edit);
    auto Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(RT.pump(B));
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    State.SetIterationTime(Secs);
    WaveUs.push_back(Secs * 1e6);
  }
  std::sort(WaveUs.begin(), WaveUs.end());
  auto Pct = [&](double P) {
    if (WaveUs.empty())
      return 0.0;
    size_t I = static_cast<size_t>(P * (WaveUs.size() - 1));
    return WaveUs[I];
  };
  State.counters["deadline_us"] = static_cast<double>(DeadlineUs);
  State.counters["p50_us"] = Pct(0.50);
  State.counters["p99_us"] = Pct(0.99);
  State.counters["max_us"] = WaveUs.empty() ? 0.0 : WaveUs.back();
  State.counters["degraded_waves"] =
      static_cast<double>(RT.stats().GovWavesDegraded.total());
  State.counters["parked"] = static_cast<double>(RT.graph().numPending());
}
BENCHMARK(BM_E13b_DeadlineBoundedWave)
    ->Arg(100)
    ->Arg(250)
    ->Arg(1000)
    ->UseManualTime();

// E13b': the recovery cost after sustained degradation — one unbudgeted
// pump draining a backlog built by K deadline-cut waves. Bounds "how far
// behind" graceful degradation lets the graph fall.
static void BM_E13b_RecoveryDrain(benchmark::State &State) {
  uint64_t Cuts = static_cast<uint64_t>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Runtime RT;
    ChainFixture Chain(RT, 4096);
    RT.pumpUnbounded();
    int Edit = 0;
    for (uint64_t I = 0; I < Cuts; ++I) {
      Chain.Src.set(++Edit);
      RT.pump(WaveBudget::deadline(100));
    }
    State.ResumeTiming();
    benchmark::DoNotOptimize(RT.pumpUnbounded());
  }
}
BENCHMARK(BM_E13b_RecoveryDrain)->Arg(4)->Arg(16)->Arg(64);

ALPHONSE_BENCH_MAIN()
