//===- bench_avl.cpp - Experiment E6 --------------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.3 / Section 9: the Alphonse AVL tree (simple exhaustive
// specification + incremental runtime) against the hand-written textbook
// AVL tree. Alphonse is "not designed to compete with programmers willing
// to embed detailed caching strategies"; the claim is the same asymptotic
// shape at a bookkeeping constant, plus a batching advantage in off-line
// use.
//
//===----------------------------------------------------------------------===//

#include "trees/AvlTree.h"
#include "trees/ClassicAvl.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <random>

using namespace alphonse;
using trees::AvlTree;
using trees::ClassicAvl;

// E6a: on-line use — N random inserts, rebalancing after each.
static void BM_E6_AlphonseOnline(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Runtime RT;
    AvlTree T(RT);
    std::mt19937 Rng(42);
    auto Start = std::chrono::steady_clock::now();
    for (int I = 0; I < N; ++I) {
      T.insert(static_cast<int>(Rng() % (N * 8)));
      T.rebalance();
    }
    benchmark::DoNotOptimize(T.height());
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
  }
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E6_AlphonseOnline)->Arg(256)->Arg(1024)->Arg(4096)->UseManualTime();

// E6b: on-line baseline — the hand-written AVL tree.
static void BM_E6_ClassicOnline(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    ClassicAvl T;
    std::mt19937 Rng(42);
    for (int I = 0; I < N; ++I)
      T.insert(static_cast<int>(Rng() % (N * 8)));
    benchmark::DoNotOptimize(T.height());
  }
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E6_ClassicOnline)->Arg(256)->Arg(1024)->Arg(4096);

// E6c: off-line use — insert everything, then one batched rebalance (the
// mode the hand-written eager tree cannot express without rewriting).
static void BM_E6_AlphonseOffline(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Runtime RT;
    AvlTree T(RT);
    std::mt19937 Rng(42);
    auto Start = std::chrono::steady_clock::now();
    for (int I = 0; I < N; ++I)
      T.insert(static_cast<int>(Rng() % (N * 8)));
    T.rebalance();
    benchmark::DoNotOptimize(T.height());
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
  }
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E6_AlphonseOffline)->Arg(256)->Arg(1024)->Arg(4096)->UseManualTime();

// E6d: steady-state single insert + rebalance into a warm tree of N keys
// — the per-operation incremental cost (compare against E6e).
static void BM_E6_AlphonseSteadyInsert(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Runtime RT;
  AvlTree T(RT);
  std::mt19937 Rng(7);
  for (int I = 0; I < N; ++I)
    T.insert(static_cast<int>(Rng() % 1000000));
  T.rebalance();
  RT.resetStats();
  for (auto _ : State) {
    T.insert(static_cast<int>(Rng() % 1000000));
    T.rebalance();
  }
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E6_AlphonseSteadyInsert)->Arg(1024)->Arg(8192)->Arg(32768);

// E6e: steady-state single insert into the hand-written tree.
static void BM_E6_ClassicSteadyInsert(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  ClassicAvl T;
  std::mt19937 Rng(7);
  for (int I = 0; I < N; ++I)
    T.insert(static_cast<int>(Rng() % 1000000));
  for (auto _ : State)
    T.insert(static_cast<int>(Rng() % 1000000));
  State.counters["n"] = static_cast<double>(N);
}
BENCHMARK(BM_E6_ClassicSteadyInsert)->Arg(1024)->Arg(8192)->Arg(32768);

ALPHONSE_BENCH_MAIN();
