//===- bench_partition.cpp - Experiment E9 --------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 6.3: with partitioned inconsistent sets, demanding a value in
// one dependency-graph component does not force evaluation of pending
// changes in unrelated components — "this will decrease the likelihood
// that eager evaluation will be forced due to irrelevant changes and thus
// will allow more inconsistencies to be batched". We build two
// independent eager computation chains, keep mutating chain A, and demand
// from chain B; the partitioning ablation drains A's work on every
// B-demand.
//
// Section 9.2's union-find cost claim (O(alpha) per edge) is exercised by
// the edge-heavy E1/E7 benches; here the counters report scoped vs global
// evaluation work.
//
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace alphonse;

namespace {

/// An eager chain: stage[i] = stage[i-1] + 1 over a base cell.
struct Chain {
  explicit Chain(Runtime &RT, int Len, const std::string &Name)
      : Base(std::make_unique<Cell<int>>(RT, 0, Name + ".base")) {
    for (int I = 0; I < Len; ++I) {
      Cell<int> *B = Base.get();
      Maintained<int()> *Prev =
          Stages.empty() ? nullptr : Stages.back().get();
      Stages.push_back(std::make_unique<Maintained<int()>>(
          RT,
          [B, Prev] { return (Prev ? (*Prev)() : B->get()) + 1; },
          EvalStrategy::Eager, Name + ".stage"));
    }
  }
  int demand() { return (*Stages.back())(); }

  std::unique_ptr<Cell<int>> Base;
  std::vector<std::unique_ptr<Maintained<int()>>> Stages;
};

void runScenario(benchmark::State &State, bool Partitioning) {
  int Len = static_cast<int>(State.range(0));
  DepGraph::Config Cfg;
  Cfg.Partitioning = Partitioning;
  Runtime RT(Cfg);
  Chain A(RT, Len, "a");
  Chain B(RT, Len, "b");
  A.demand();
  B.demand();
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    // Mutate A (pending work accumulates in A's partition) ...
    A.Base->set(++Tick);
    // ... then demand B. With partitioning this is a pure cache hit;
    // without it, the call boundary drains A's eager chain first.
    benchmark::DoNotOptimize(B.demand());
  }
  State.counters["evalsteps/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().EvalSteps) /
      static_cast<double>(State.iterations()));
  State.counters["reexecs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["scoped_evals"] =
      static_cast<double>(RT.stats().PartitionScopedEvals);
  State.counters["len"] = static_cast<double>(Len);
  // Drain the backlog so the next benchmark starts clean.
  RT.pump();
}

} // namespace

// E9a: partitioning on (the paper's design).
static void BM_E9_Partitioned(benchmark::State &State) {
  runScenario(State, /*Partitioning=*/true);
}
BENCHMARK(BM_E9_Partitioned)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// E9b: ablation — one global inconsistent set.
static void BM_E9_Unpartitioned(benchmark::State &State) {
  runScenario(State, /*Partitioning=*/false);
}
BENCHMARK(BM_E9_Unpartitioned)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

ALPHONSE_BENCH_MAIN();
