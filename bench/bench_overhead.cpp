//===- bench_overhead.cpp - Experiment E7 ---------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 9.2: "dynamic dependence analysis can be performed in O(T)" —
// the transformed program costs only a constant factor over conventional
// execution, and the Section 6.1 static check elimination keeps
// Alphonse-independent code from paying it. We run a compute-heavy
// program with no incremental procedures through the interpreter under
// (a) conventional execution, (b) Alphonse execution of the optimized
// transformation, and (c) Alphonse execution of the naive (conservative)
// transformation.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/Parser.h"
#include "transform/Transform.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

namespace {

// Pure computation over locals plus a little heap traffic: the mutator
// workload whose instrumentation overhead we are measuring.
const char *WorkProgram = R"(
TYPE Node = OBJECT v : INTEGER; next : Node; END;
VAR head : Node; total : INTEGER;

PROCEDURE BuildList(n : INTEGER) =
VAR p : Node; i : INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO n DO
    p := NEW(Node);
    p.v := i;
    p.next := head;
    head := p;
  END;
END BuildList;

PROCEDURE SumList() : INTEGER =
VAR p : Node; s : INTEGER;
BEGIN
  s := 0;
  p := head;
  WHILE p # NIL DO
    s := s + p.v;
    p := p.next;
  END;
  RETURN s;
END SumList;

PROCEDURE Work(rounds : INTEGER) : INTEGER =
VAR i : INTEGER;
BEGIN
  total := 0;
  FOR i := 1 TO rounds DO
    total := total + SumList() MOD 1000;
  END;
  RETURN total;
END Work;
)";

struct Compiled {
  Module M;
  SemaInfo Info;
  DiagnosticEngine Diags;
};

std::unique_ptr<Compiled> compileWork(bool DoTransform, bool Conservative) {
  auto C = std::make_unique<Compiled>();
  C->M = parseModule(WorkProgram, C->Diags);
  C->Info = analyze(C->M, C->Diags);
  assert(!C->Diags.hasErrors());
  if (DoTransform) {
    transform::TransformOptions Opts;
    Opts.OptimizeLocalAccesses = !Conservative;
    Opts.OptimizeCallChecks = !Conservative;
    transform::transform(C->M, C->Info, Opts);
  }
  return C;
}

void runWork(benchmark::State &State, const Compiled &C, ExecMode Mode) {
  int N = static_cast<int>(State.range(0));
  Interp I(C.M, C.Info, Mode);
  I.call("BuildList", {Value::integer(N)});
  for (auto _ : State)
    benchmark::DoNotOptimize(I.call("Work", {Value::integer(10)}));
  assert(!I.failed());
  State.counters["n"] = static_cast<double>(N);
}

} // namespace

// E7a: conventional execution (the T of "O(T)").
static void BM_E7_Conventional(benchmark::State &State) {
  auto C = compileWork(/*DoTransform=*/false, /*Conservative=*/false);
  runWork(State, *C, ExecMode::Conventional);
}
BENCHMARK(BM_E7_Conventional)->Arg(100)->Arg(1000)->Arg(10000);

// E7b: optimized transformation, Alphonse execution. No incremental
// procedures exist, so all cost is instrumentation overhead.
static void BM_E7_AlphonseOptimized(benchmark::State &State) {
  auto C = compileWork(/*DoTransform=*/true, /*Conservative=*/false);
  runWork(State, *C, ExecMode::Alphonse);
}
BENCHMARK(BM_E7_AlphonseOptimized)->Arg(100)->Arg(1000)->Arg(10000);

// E7c: conservative transformation (every read/write/call checked): the
// overhead the Section 6.1 optimization exists to remove.
static void BM_E7_AlphonseConservative(benchmark::State &State) {
  auto C = compileWork(/*DoTransform=*/true, /*Conservative=*/true);
  runWork(State, *C, ExecMode::Alphonse);
}
BENCHMARK(BM_E7_AlphonseConservative)->Arg(100)->Arg(1000)->Arg(10000);

ALPHONSE_BENCH_MAIN();
