//===- bench_checkpoint.cpp - Checkpoint save/restore cost ----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Cost of the durability layer (DESIGN.md Section 10) on a graph of N
// tracked cells plus N maintained prefix-sum instances:
//
//  CKa: full snapshot — capture the engine state, serialize, write
//       crash-atomically (temp + fsync + rename). Reported with the file
//       size as a counter; the claim is O(live state), not O(history).
//  CKb: restore — decode, rebuild the typed layer, re-bind ids, verify.
//  CKc: delta append — one changed cell, one O_APPEND record; the cheap
//       steady-state path that amortizes CKa.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "graph/CheckpointTestHost.h"

#include <benchmark/benchmark.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

using namespace alphonse;
using namespace alphonse::ckpttest;

namespace {

/// Per-process temp path; every benchmark overwrites it freely.
std::string benchPath() {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir ? Dir : "/tmp") + "/bench-checkpoint." +
         std::to_string(::getpid()) + ".ckpt";
}

void cleanupPath(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
  std::remove(deltaLogPath(Path).c_str());
}

size_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<size_t>(St.st_size)
                                        : 0;
}

} // namespace

// CKa: full crash-atomic snapshot of a quiescent N-cell graph.
static void BM_Ckpt_Save(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  std::string Path = benchPath();
  CheckpointHost Host(N);
  Host.touchAll();
  Host.RT.pump();
  for (auto _ : State)
    Host.save(Path);
  State.counters["cells"] = static_cast<double>(N);
  State.counters["bytes"] = static_cast<double>(fileSize(Path));
  cleanupPath(Path);
}
BENCHMARK(BM_Ckpt_Save)->Arg(64)->Arg(512)->Arg(4096);

// CKb: restore into a fresh host (decode + rebuild + bind + verify).
static void BM_Ckpt_Restore(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  std::string Path = benchPath();
  {
    CheckpointHost Host(N);
    Host.touchAll();
    Host.save(Path);
  }
  for (auto _ : State) {
    State.PauseTiming();
    CheckpointHost Fresh(N);
    State.ResumeTiming();
    Fresh.restore(Path);
    benchmark::DoNotOptimize(Fresh.RT.graph().numLiveNodes());
  }
  State.counters["cells"] = static_cast<double>(N);
  State.counters["bytes"] = static_cast<double>(fileSize(Path));
  cleanupPath(Path);
}
BENCHMARK(BM_Ckpt_Restore)->Arg(64)->Arg(512)->Arg(4096);

// CKc: the steady-state path — one cell write, one delta record appended
// to the sidecar log (the log is reset outside the timed region so its
// length stays constant).
static void BM_Ckpt_DeltaAppend(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  std::string Path = benchPath();
  CheckpointHost Host(N);
  Host.touchAll();
  Host.save(Path);
  int V = 0;
  for (auto _ : State) {
    State.PauseTiming();
    removeDeltaLog(deltaLogPath(Path));
    State.ResumeTiming();
    ++V;
    *Host.Cells[static_cast<size_t>(V) % N] = V;
    Host.appendDelta(Path);
  }
  State.counters["cells"] = static_cast<double>(N);
  cleanupPath(Path);
}
BENCHMARK(BM_Ckpt_DeltaAppend)->Arg(64)->Arg(512)->Arg(4096);

ALPHONSE_BENCH_MAIN();
