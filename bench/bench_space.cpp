//===- bench_space.cpp - Experiment E8 ------------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 9.1 space analysis:
//  - nodes are O(M);
//  - edges are O(M) when referenced-argument sets are constant-sized
//    (the maintained-height tree);
//  - edges are O(M log M) for maintained searches in balanced trees
//    (tracked lookups);
//  - edges can reach O(M^2) when every procedure scans all data — and
//    then "every change will trigger the re-execution of O(M)
//    incrementally maintained procedures resulting in zero speedup".
//
// Each case reports measured node/edge counts as counters; the dense case
// also reports re-executions per change (≈ M, i.e. no speedup).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "trees/AvlTree.h"

#include <benchmark/benchmark.h>

using namespace alphonse;
using namespace alphonse::bench;
using trees::AvlTree;
using trees::HeightTree;

// E8a: constant referenced-argument sets (height tree): edges = O(M).
static void BM_E8_ConstantRefSets(benchmark::State &State) {
  size_t M = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, M);
  Tree.height(Nodes[0]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
  State.counters["m"] = static_cast<double>(M);
  State.counters["graph_nodes"] =
      static_cast<double>(RT.graph().numLiveNodes());
  State.counters["graph_edges"] =
      static_cast<double>(RT.graph().numLiveEdges());
  State.counters["edges_per_m"] =
      static_cast<double>(RT.graph().numLiveEdges()) /
      static_cast<double>(M);
  // Slab footprint of the handle-based engine (graph.node_bytes /
  // graph.edge_bytes): reserved table bytes per live node/edge, the
  // figure the 24-byte packed Edge is accountable to.
  State.counters["bytes_per_node"] =
      static_cast<double>(RT.graph().nodeSlabBytes()) /
      static_cast<double>(RT.graph().numLiveNodes());
  State.counters["bytes_per_edge"] =
      static_cast<double>(RT.graph().edgeSlabBytes()) /
      static_cast<double>(RT.graph().numLiveEdges());
}
BENCHMARK(BM_E8_ConstantRefSets)->Arg(1023)->Arg(4095)->Arg(16383);

// E8b: maintained searches: each of M lookups records an O(log M) path,
// so edges grow as M log M (the per-lookup edge count grows with log M).
static void BM_E8_SearchRefSets(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  AvlTree T(RT, /*UncheckedLookups=*/false);
  for (int K = 0; K < M; ++K)
    T.insert(K);
  T.rebalance();
  size_t EdgesBefore = RT.graph().numLiveEdges();
  for (int K = 0; K < M; ++K)
    T.lookup(K);
  size_t LookupEdges = RT.graph().numLiveEdges() - EdgesBefore;
  for (auto _ : State)
    benchmark::DoNotOptimize(T.lookup(M / 2));
  State.counters["m"] = static_cast<double>(M);
  State.counters["lookup_edges"] = static_cast<double>(LookupEdges);
  State.counters["edges_per_lookup"] =
      static_cast<double>(LookupEdges) / static_cast<double>(M);
}
BENCHMARK(BM_E8_SearchRefSets)->Arg(256)->Arg(1024)->Arg(4096);

// E8c: dense dependence — one maintained aggregate per element, each
// reading ALL M cells: edges O(M^2) and zero incremental speedup (every
// change re-runs O(M) procedures).
static void BM_E8_DenseRefSets(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  std::vector<std::unique_ptr<Cell<int>>> Data;
  for (int I = 0; I < M; ++I)
    Data.push_back(std::make_unique<Cell<int>>(RT, I));
  Maintained<int(int)> Aggregate(RT, [&](int Salt) {
    int Sum = Salt;
    for (auto &C : Data)
      Sum += C->get();
    return Sum;
  });
  for (int I = 0; I < M; ++I)
    Aggregate(I);
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    Data[0]->set(++Tick);
    // Demand every aggregate again: all must re-run.
    long Sum = 0;
    for (int I = 0; I < M; ++I)
      Sum += Aggregate(I);
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["m"] = static_cast<double>(M);
  State.counters["graph_edges"] =
      static_cast<double>(RT.graph().numLiveEdges());
  State.counters["edges_per_m"] =
      static_cast<double>(RT.graph().numLiveEdges()) /
      static_cast<double>(M);
  State.counters["reexec_per_change"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(BM_E8_DenseRefSets)->Arg(16)->Arg(64)->Arg(256);

ALPHONSE_BENCH_MAIN();
