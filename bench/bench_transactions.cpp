//===- bench_transactions.cpp - Transaction overhead ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Cost of the transactional batch machinery (DESIGN.md "Transactions and
// recovery") on the E3 workload:
//
//  TXa: K changes + one demand, no transaction — the baseline.
//  TXb: the same batch inside beginBatch()/commit() — measures journaling
//       overhead on the mutation/execution path (undo entries per batch
//       are reported as a counter).
//  TXc: the same batch rolled back instead of committed — measures the
//       cost of restoring the pre-batch state (reverse replay).
//
// The claim worth checking: journaling is a constant factor on touched
// state, and rollback is proportional to the journal, not the graph.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace alphonse;
using namespace alphonse::bench;
using trees::HeightTree;

namespace {
constexpr size_t TreeNodes = 8191; // 13 levels, 4096 leaves.
constexpr size_t FirstLeaf = TreeNodes / 2;

/// The E3 half-batch: attach (or detach) K fresh subtrees, then demand the
/// root height once.
void runBatch(HeightTree &Tree, std::vector<HeightTree::Node *> &Nodes,
              std::vector<HeightTree::Node *> &Fresh, bool Attach) {
  for (size_t I = 0; I < Fresh.size(); ++I)
    Tree.setLeft(Nodes[FirstLeaf + I], Attach ? Fresh[I] : Tree.nil());
  benchmark::DoNotOptimize(Tree.height(Nodes[0]));
}
} // namespace

// TXa: untransacted baseline.
static void BM_TX_NoTransaction(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, TreeNodes);
  Tree.height(Nodes[0]);
  std::vector<HeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  bool Attach = true;
  for (auto _ : State) {
    runBatch(Tree, Nodes, Fresh, Attach);
    Attach = !Attach;
  }
  State.counters["k"] = static_cast<double>(K);
}
BENCHMARK(BM_TX_NoTransaction)->Arg(1)->Arg(16)->Arg(256);

// TXb: the same work journaled and committed.
static void BM_TX_Commit(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, TreeNodes);
  Tree.height(Nodes[0]);
  std::vector<HeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  bool Attach = true;
  RT.resetStats();
  for (auto _ : State) {
    RT.beginBatch();
    runBatch(Tree, Nodes, Fresh, Attach);
    bool Committed = RT.commitBatch();
    benchmark::DoNotOptimize(Committed);
    Attach = !Attach;
  }
  State.counters["k"] = static_cast<double>(K);
  State.counters["undo/batch"] = benchmark::Counter(
      static_cast<double>(RT.stats().TxnUndoEntries) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(BM_TX_Commit)->Arg(1)->Arg(16)->Arg(256);

// TXc: the same work rolled back — every iteration restores the pre-batch
// state, so the workload stays attached-state-free across iterations.
// VerifyOnRollback (on by default) audits the whole graph after each
// rollback, an O(nodes+edges) safety net that would swamp the replay cost
// here; it is disabled so the counter isolates the reverse replay itself.
static void BM_TX_Rollback(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  DepGraph::Config Cfg;
  Cfg.VerifyOnRollback = false;
  Runtime RT(Cfg);
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, TreeNodes);
  Tree.height(Nodes[0]);
  std::vector<HeightTree::Node *> Fresh;
  for (size_t I = 0; I < K; ++I)
    Fresh.push_back(Tree.makeNode());
  RT.resetStats();
  for (auto _ : State) {
    RT.beginBatch();
    runBatch(Tree, Nodes, Fresh, /*Attach=*/true);
    RT.rollbackBatch();
  }
  State.counters["k"] = static_cast<double>(K);
  State.counters["undo/batch"] = benchmark::Counter(
      static_cast<double>(RT.stats().TxnUndoEntries) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(BM_TX_Rollback)->Arg(1)->Arg(16)->Arg(256);

ALPHONSE_BENCH_MAIN();
