//===- bench_height_tree.cpp - Experiments E1 and E2 ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 3.4 cost claims for the maintained-height tree (Algorithm 1):
//
//  E1: the first height() demand costs O(|subtree|); subsequent demands
//      cost O(1).
//  E2: a child-pointer change costs O(height) to update the cached values
//      on the path to the root.
//
// Baselines: exhaustive recomputation (the conventional execution of the
// same specification) and the hand-coded parent-pointer update tree
// ("the ambitious programmer", Section 9).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "trees/ManualHeightTree.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace alphonse;
using namespace alphonse::bench;
using trees::HeightTree;
using trees::ManualHeightTree;

// E1a: first demand over a fresh tree of N nodes — expected O(N).
// Manual timing: the per-iteration tree construction must not pollute
// the measurement.
static void BM_E1_FirstDemand(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  uint64_t Execs = 0;
  for (auto _ : State) {
    Runtime RT;
    HeightTree Tree(RT);
    auto Nodes = buildPerfectTree(Tree, N);
    auto Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
    Execs += RT.stats().ProcExecutions;
  }
  State.counters["execs/op"] =
      benchmark::Counter(static_cast<double>(Execs) /
                         static_cast<double>(State.iterations()));
  State.counters["nodes"] = static_cast<double>(N);
}
BENCHMARK(BM_E1_FirstDemand)
    ->Arg(255)
    ->Arg(1023)
    ->Arg(4095)
    ->Arg(16383)
    ->UseManualTime();

// E1b: repeated demand — expected O(1), independent of N.
static void BM_E1_RepeatDemand(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, N);
  Tree.height(Nodes[0]);
  RT.resetStats();
  for (auto _ : State)
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
}
BENCHMARK(BM_E1_RepeatDemand)->Arg(255)->Arg(4095)->Arg(65535);

// E1 baseline: the conventional exhaustive recursion — O(N) every demand.
static void BM_E1_ExhaustiveDemand(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, N);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        HeightTree::exhaustiveHeight(Nodes[0], Tree.nil()));
}
BENCHMARK(BM_E1_ExhaustiveDemand)->Arg(255)->Arg(4095)->Arg(65535);

// E2: one pointer change then a re-demand — expected O(height) = O(log N).
// Each iteration alternately attaches/detaches a spare node below the
// leftmost leaf, so the height genuinely flips between log(N) and
// log(N) + 1 and the full root path updates every time.
static void BM_E2_PointerChangeUpdate(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, N);
  Tree.height(Nodes[0]);
  HeightTree::Node *Leaf = Nodes[N / 2]; // First leaf in level order.
  HeightTree::Node *Spare = Tree.makeNode();
  bool Attached = false;
  RT.resetStats();
  for (auto _ : State) {
    Tree.setLeft(Leaf, Attached ? Tree.nil() : Spare);
    Attached = !Attached;
    benchmark::DoNotOptimize(Tree.height(Nodes[0]));
  }
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["depth"] =
      static_cast<double>(HeightTree::exhaustiveHeight(Nodes[0], Tree.nil()));
}
BENCHMARK(BM_E2_PointerChangeUpdate)
    ->Arg(255)
    ->Arg(1023)
    ->Arg(4095)
    ->Arg(16383)
    ->Arg(65535);

// E2 baseline: the hand-coded parent-pointer repair ("ambitious
// programmer") doing the same alternating change.
static void BM_E2_ManualUpdate(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  ManualHeightTree Tree;
  std::vector<ManualHeightTree::Node *> Nodes;
  for (size_t I = 0; I < N; ++I)
    Nodes.push_back(Tree.makeNode());
  for (size_t I = 0; I < N; ++I) {
    if (2 * I + 1 < N)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < N)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }
  ManualHeightTree::Node *Leaf = Nodes[N / 2];
  ManualHeightTree::Node *Spare = Tree.makeNode();
  bool Attached = false;
  for (auto _ : State) {
    Tree.setLeft(Leaf, Attached ? nullptr : Spare);
    Attached = !Attached;
    benchmark::DoNotOptimize(ManualHeightTree::height(Nodes[0]));
  }
}
BENCHMARK(BM_E2_ManualUpdate)->Arg(255)->Arg(4095)->Arg(65535);

// E2 contrast: the same change answered by full exhaustive recomputation.
static void BM_E2_ExhaustiveUpdate(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Runtime RT;
  HeightTree Tree(RT);
  auto Nodes = buildPerfectTree(Tree, N);
  HeightTree::Node *Leaf = Nodes[N / 2];
  HeightTree::Node *Spare = Tree.makeNode();
  bool Attached = false;
  for (auto _ : State) {
    Tree.setLeft(Leaf, Attached ? Tree.nil() : Spare);
    Attached = !Attached;
    benchmark::DoNotOptimize(
        HeightTree::exhaustiveHeight(Nodes[0], Tree.nil()));
  }
}
BENCHMARK(BM_E2_ExhaustiveUpdate)->Arg(255)->Arg(4095)->Arg(65535);

ALPHONSE_BENCH_MAIN();
