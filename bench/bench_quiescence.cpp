//===- bench_quiescence.cpp - Experiment E11 ------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 2 / Algorithm 4: propagation becomes quiescent when recomputed
// values match cached ones. Three layers of cutoff are measured over an
// eager chain sign(x) -> s1 -> ... -> sD:
//
//  - writing the same value back before evaluation (modify's comparison);
//  - writing a different value that refreshes to the old one (x->y->x);
//  - writing a different value whose derived head value is unchanged
//    (the sign() collapse), which stops the chain at depth 1.
//
// The VariableCutoff ablation shows what happens without Algorithm 4's
// value comparison: every write floods the chain.
//
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace alphonse;

namespace {

struct SignChain {
  SignChain(Runtime &RT, int Depth)
      : X(std::make_unique<Cell<int>>(RT, 1, "x")) {
    Cell<int> *Base = X.get();
    Stages.push_back(std::make_unique<Maintained<int()>>(
        RT, [Base] { return Base->get() > 0 ? 1 : -1; },
        EvalStrategy::Eager, "sign"));
    for (int I = 1; I < Depth; ++I) {
      Maintained<int()> *Prev = Stages.back().get();
      Stages.push_back(std::make_unique<Maintained<int()>>(
          RT, [Prev] { return (*Prev)() + 1; }, EvalStrategy::Eager,
          "stage"));
    }
  }
  int demand() { return (*Stages.back())(); }

  std::unique_ptr<Cell<int>> X;
  std::vector<std::unique_ptr<Maintained<int()>>> Stages;
};

void writePattern(benchmark::State &State, int Pattern, bool Cutoff) {
  int Depth = static_cast<int>(State.range(0));
  DepGraph::Config Cfg;
  Cfg.VariableCutoff = Cutoff;
  Runtime RT(Cfg);
  SignChain Chain(RT, Depth);
  Chain.demand();
  RT.pump();
  RT.resetStats();
  int Tick = 1;
  for (auto _ : State) {
    switch (Pattern) {
    case 0: // Same value.
      Chain.X->set(1);
      break;
    case 1: // Away and back before evaluation.
      Chain.X->set(2);
      Chain.X->set(1);
      break;
    case 2: // A real change, always positive: sign() re-runs each round
            // but its value never changes, shielding the chain.
      Chain.X->set(++Tick);
      break;
    }
    RT.pump();
    benchmark::DoNotOptimize(Chain.demand());
  }
  State.counters["reexecs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["cutoffs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().QuiescenceCutoffs) /
      static_cast<double>(State.iterations()));
  State.counters["depth"] = static_cast<double>(Depth);
}

} // namespace

// E11a: x := x — suppressed at the write itself (0 re-executions).
static void BM_E11_SameValueWrite(benchmark::State &State) {
  writePattern(State, 0, /*Cutoff=*/true);
}
BENCHMARK(BM_E11_SameValueWrite)->Arg(64)->Arg(512);

// E11b: x -> y -> x before evaluation — caught at refresh (0 re-runs).
static void BM_E11_WriteBack(benchmark::State &State) {
  writePattern(State, 1, /*Cutoff=*/true);
}
BENCHMARK(BM_E11_WriteBack)->Arg(64)->Arg(512);

// E11c: a real change that collapses at sign(): exactly one re-run
// regardless of chain depth.
static void BM_E11_CollapsedChange(benchmark::State &State) {
  writePattern(State, 2, /*Cutoff=*/true);
}
BENCHMARK(BM_E11_CollapsedChange)->Arg(64)->Arg(512);

// E11d: ablation — without the variable-level comparison, an x -> y -> x
// write pair reaches the first procedure and re-runs it spuriously every
// time (the eager value cutoff then shields the rest of the chain);
// with the comparison (E11b) nothing re-runs at all.
static void BM_E11_WriteBackNoCutoff(benchmark::State &State) {
  writePattern(State, 1, /*Cutoff=*/false);
}
BENCHMARK(BM_E11_WriteBackNoCutoff)->Arg(64)->Arg(512);

ALPHONSE_BENCH_MAIN();
