//===- bench_spreadsheet.cpp - Experiment E4 ------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.2 / Section 1: in a dynamic, interactive setting, running the
// exhaustive algorithm after every small edit is unnecessarily
// inefficient. An M x M sheet where column j sums columns to its left;
// after one literal edit we re-read the whole sheet either incrementally
// (Alphonse) or by full recomputation (the conventional baseline). The
// incremental advantage grows with M.
//
//===----------------------------------------------------------------------===//

#include "spreadsheet/Spreadsheet.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace alphonse;
using spreadsheet::Spreadsheet;

namespace {

/// Column 0 holds literals; cell (r, c) = cell(r, c-1) + cell(r-1, c)
/// (a Pascal-triangle-like dependence fabric touching every cell).
void fillSheet(Spreadsheet &S, int M) {
  for (int R = 0; R < M; ++R)
    S.setLiteral(R, 0, R + 1);
  for (int C = 1; C < M; ++C) {
    S.setFormula(0, C, "cell(0," + std::to_string(C - 1) + ")");
    for (int R = 1; R < M; ++R)
      S.setFormula(R, C,
                   "cell(" + std::to_string(R) + "," + std::to_string(C - 1) +
                       ") + cell(" + std::to_string(R - 1) + "," +
                       std::to_string(C) + ")");
  }
}

long long readAll(Spreadsheet &S, int M) {
  long long Sum = 0;
  for (int R = 0; R < M; ++R)
    for (int C = 0; C < M; ++C)
      Sum += S.value(R, C);
  return Sum;
}

} // namespace

// E4a: one literal edit, then read the grand total (bottom-right cell):
// the interactive scenario the paper's introduction motivates. The
// incremental cost is the affected slice that feeds the total (~M cells),
// not the M^2 sheet.
static void BM_E4_IncrementalEditReadTotal(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  Spreadsheet S(RT, M, M);
  fillSheet(S, M);
  readAll(S, M);
  int Tick = 0;
  RT.resetStats();
  for (auto _ : State) {
    // Edit the last literal: only the last row's chain depends on it.
    S.setLiteral(M - 1, 0, ++Tick);
    benchmark::DoNotOptimize(S.value(M - 1, M - 1));
  }
  State.counters["execs/op"] = benchmark::Counter(
      static_cast<double>(RT.stats().ProcExecutions) /
      static_cast<double>(State.iterations()));
  State.counters["cells"] = static_cast<double>(M) * M;
}
BENCHMARK(BM_E4_IncrementalEditReadTotal)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// E4b: the conventional engine answers the same edit with a full
// recalculation of every cell (each computed once).
static void BM_E4_ExhaustiveEditRecalc(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  Spreadsheet S(RT, M, M);
  fillSheet(S, M);
  int Tick = 0;
  for (auto _ : State) {
    S.setLiteral(M - 1, 0, ++Tick);
    benchmark::DoNotOptimize(S.recomputeAllExhaustive());
  }
  State.counters["cells"] = static_cast<double>(M) * M;
}
BENCHMARK(BM_E4_ExhaustiveEditRecalc)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// E4c: a "dashboard refresh": after the edit, every cell is re-read
// through the incremental engine. Cache hits are not free, so this shows
// the bookkeeping constant — the boundary Section 9.1 warns about (when
// everything is demanded, the incremental advantage shrinks to the
// affected/total ratio discounted by per-access overhead).
static void BM_E4_IncrementalEditReadAll(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  Spreadsheet S(RT, M, M);
  fillSheet(S, M);
  readAll(S, M);
  int Tick = 0;
  for (auto _ : State) {
    S.setLiteral(M - 1, 0, ++Tick);
    benchmark::DoNotOptimize(readAll(S, M));
  }
  State.counters["cells"] = static_cast<double>(M) * M;
}
BENCHMARK(BM_E4_IncrementalEditReadAll)->Arg(8)->Arg(16)->Arg(32);

// E4d: worst-case edit — the top-left literal feeds every cell, so the
// entire sheet legitimately recomputes; incremental cost degenerates to
// the exhaustive pass times the bookkeeping constant (zero speedup, as
// Section 9.1 predicts for dense dependence).
static void BM_E4_WorstCaseEdit(benchmark::State &State) {
  int M = static_cast<int>(State.range(0));
  Runtime RT;
  Spreadsheet S(RT, M, M);
  fillSheet(S, M);
  readAll(S, M);
  int Tick = 0;
  for (auto _ : State) {
    S.setLiteral(0, 0, 1000 + ++Tick); // Everything depends on (0,0).
    benchmark::DoNotOptimize(S.value(M - 1, M - 1));
  }
  State.counters["cells"] = static_cast<double>(M) * M;
}
BENCHMARK(BM_E4_WorstCaseEdit)->Arg(8)->Arg(16)->Arg(32);

ALPHONSE_BENCH_MAIN();
