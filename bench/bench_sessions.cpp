//===- bench_sessions.cpp - Experiment E14: session service ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The session service under serving-shaped traffic (DESIGN.md "Session
// service"): tens of thousands of isolated spreadsheet sessions
// multiplexed over one shared worker pool, mutated at Zipf-distributed
// rates (a few hot sessions take most of the edits, a long tail is
// mostly idle — the standard shape of per-user serving load).
//
//  E14a: steady churn — every iteration applies a Zipf batch of edits
//        and runs one batched drain cycle to quiescence. Reported:
//        p50/p99/p999 dirty-to-quiescent wave latency from the service
//        histogram, plus admitted/degraded/deferred/shed wave counts.
//
//  E14b: governed churn — the same traffic under a two-step per-session
//        budget with OverloadPolicy::Defer: hot sessions degrade, park
//        residue, and are deferred while they lag, demonstrating
//        per-session admission control at service scale. A final
//        drainAll() catch-up is included in the run (and timed), so the
//        benchmark ends with every session quiescent.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "service/SessionManager.h"
#include "spreadsheet/Spreadsheet.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <vector>

using namespace alphonse;
using spreadsheet::Spreadsheet;

namespace {

/// Zipf(s = 1.1) sampler over session ranks: precomputed CDF + binary
/// search, deterministic seed — runs are reproducible and the hot set is
/// stable across iterations.
class ZipfSampler {
public:
  ZipfSampler(size_t N, uint64_t Seed) : Rng(Seed) {
    Cdf.reserve(N);
    double Sum = 0.0;
    for (size_t I = 1; I <= N; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I), 1.1);
      Cdf.push_back(Sum);
    }
  }

  size_t next() {
    double U = std::uniform_real_distribution<double>(0.0, Cdf.back())(Rng);
    return static_cast<size_t>(
        std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin());
  }

private:
  std::vector<double> Cdf;
  std::mt19937_64 Rng;
};

/// S sessions, each a warmed-up 2x2 sheet ((0,0) literal feeding (0,1)
/// and (1,1)), over a 4-worker shared pool.
struct ServiceFixture {
  ServiceFixture(size_t S, const WaveBudget &Budget) {
    ServiceConfig C;
    C.Workers = 4;
    C.SessionBudget = Budget;
    M = std::make_unique<SessionManager>(C);
    Ids.reserve(S);
    for (size_t I = 0; I < S; ++I) {
      Session &Sess = M->open();
      Ids.push_back(Sess.id());
      Spreadsheet &Sheet =
          Sess.emplaceProgram<Spreadsheet>(Sess.runtime(), 2, 2);
      Sheet.setLiteral(0, 0, static_cast<int>(I));
      Sheet.setFormula(0, 1, "cell(0,0) * 2 + 1");
      Sheet.setFormula(1, 1, "cell(0,1) + cell(0,0)");
      Sheet.value(0, 1); // Bind the dependency cones up front;
      Sheet.value(1, 1); // steady-state edits are then incremental.
    }
  }

  std::unique_ptr<SessionManager> M;
  std::vector<Session::Id> Ids;
};

void reportServiceCounters(benchmark::State &State, const ServiceFixture &F) {
  const ServiceStats &S = F.M->stats();
  State.counters["sessions"] = static_cast<double>(F.M->openSessions());
  State.counters["p50_us"] = static_cast<double>(S.WaveLatency.quantileUs(0.50));
  State.counters["p99_us"] = static_cast<double>(S.WaveLatency.quantileUs(0.99));
  State.counters["p999_us"] =
      static_cast<double>(S.WaveLatency.quantileUs(0.999));
  State.counters["waves_admitted"] = static_cast<double>(S.WavesAdmitted.total());
  State.counters["waves_degraded"] = static_cast<double>(S.WavesDegraded.total());
  State.counters["waves_deferred"] = static_cast<double>(S.WavesDeferred.total());
  State.counters["waves_shed"] = static_cast<double>(S.WavesShed.total());
  State.counters["queue_peak"] = static_cast<double>(S.QueuePeak.total());
}

// E14a: Zipf edit batches, unbounded per-session waves. One iteration =
// one batch of 64 edits + one batched drain cycle.
void BM_E14a_SessionChurn(benchmark::State &State) {
  size_t S = static_cast<size_t>(State.range(0));
  ServiceFixture F(S, WaveBudget());
  F.M->drainAll();
  ZipfSampler Zipf(S, 0x5e55);
  int V = 0;
  for (auto _ : State) {
    for (int E = 0; E < 64; ++E) {
      size_t I = Zipf.next();
      F.M->mutate(F.Ids[I], [&](Session &Sess) {
        Sess.program<Spreadsheet>()->setLiteral(0, 0, ++V);
      });
    }
    F.M->drainCycle();
  }
  reportServiceCounters(State, F);
}
BENCHMARK(BM_E14a_SessionChurn)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

// E14b: the same traffic under a two-step budget with Defer — hot
// sessions degrade and get deferred while they lag; the final catch-up
// drain is part of the measured run.
void BM_E14b_GovernedSessionChurn(benchmark::State &State) {
  size_t S = static_cast<size_t>(State.range(0));
  WaveBudget B = WaveBudget::steps(2);
  B.Policy = OverloadPolicy::Defer;
  ServiceFixture F(S, B);
  F.M->drainAll();
  ZipfSampler Zipf(S, 0x5e55);
  int V = 0;
  for (auto _ : State) {
    for (int E = 0; E < 64; ++E) {
      size_t I = Zipf.next();
      F.M->mutate(F.Ids[I], [&](Session &Sess) {
        Sess.program<Spreadsheet>()->setLiteral(0, 0, ++V);
      });
    }
    F.M->drainCycle();
  }
  F.M->drainAll();
  reportServiceCounters(State, F);
}
BENCHMARK(BM_E14b_GovernedSessionChurn)
    ->Arg(10000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

} // namespace

ALPHONSE_BENCH_MAIN()
