//===- bench_interp.cpp - Experiment E15 ----------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The bytecode tier's two claims, measured on Alphonse-L programs:
//
//  1. Language nodes join parallel drains. An attribute-grammar-style
//     workload — independent lanes of (*MAINTAINED EAGER*) total()
//     chains whose recomputes block in pause() — is swept over worker
//     counts. The lanes are disjoint partitions, so wave workers overlap
//     their blocked time; with the tree-walker every language node was
//     serial-pinned and the mop-up drained them one by one.
//     BM_InterpWaveSpeedup reports the 4-worker-vs-serial ratio as the
//     speedup_4w counter (the E15 acceptance number).
//
//  2. Compiled bodies are cheaper than walking the tree. A CPU-bound
//     transform-style workload (the instrumented mutator program of E7)
//     runs through both engines at Workers = 0; the compiled_vs_treewalk
//     counter is treewalk-ns / bytecode-ns.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/Parser.h"
#include "transform/Transform.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

namespace {

// Attribute-grammar-style lanes: each lane is an independent chain of
// cells with a maintained, eagerly repaired total. Every recompute
// pauses, standing in for an evaluation that blocks (I/O, a slow
// attribute function); the per-lane TailNil sentinels keep the lanes in
// disjoint partitions so the scheduler may drain them concurrently.
const char *LaneProgram = R"(
TYPE Cell = OBJECT
  val : INTEGER;
  next : Cell;
METHODS
  (*MAINTAINED EAGER*) total() : INTEGER := Total;
END;

TYPE CellNil = Cell OBJECT
OVERRIDES
  (*MAINTAINED EAGER*) total := TotalNil;
END;

TYPE Lane = OBJECT
  head, tail : Cell;
  nextLane : Lane;
END;

VAR lanes : Lane;

PROCEDURE Total(c : Cell) : INTEGER =
BEGIN
  pause(200);
  RETURN c.val + c.next.total();
END Total;

PROCEDURE TotalNil(c : Cell) : INTEGER =
BEGIN
  RETURN 0;
END TotalNil;

PROCEDURE MakeLane(depth : INTEGER) : Lane =
VAR l : Lane; c : Cell; i : INTEGER;
BEGIN
  l := NEW(Lane);
  l.tail := NEW(CellNil);
  l.head := l.tail;
  FOR i := 1 TO depth DO
    c := NEW(Cell);
    c.val := i;
    c.next := l.head;
    l.head := c;
  END;
  RETURN l;
END MakeLane;

PROCEDURE Setup(k, depth : INTEGER) =
VAR i : INTEGER; l : Lane;
BEGIN
  lanes := NIL;
  FOR i := 1 TO k DO
    l := MakeLane(depth);
    l.nextLane := lanes;
    lanes := l;
  END;
END Setup;

PROCEDURE Demand() : INTEGER =
VAR l : Lane; s : INTEGER;
BEGIN
  s := 0;
  l := lanes;
  WHILE l # NIL DO
    s := s + l.head.total();
    l := l.nextLane;
  END;
  RETURN s;
END Demand;

PROCEDURE BumpAll(x : INTEGER) =
VAR l : Lane; c : Cell;
BEGIN
  l := lanes;
  WHILE l # NIL DO
    c := l.head;
    WHILE c.next # l.tail DO
      c := c.next;
    END;
    c.val := x;
    l := l.nextLane;
  END;
END BumpAll;
)";

// Transform-style CPU-bound workload: the E7 instrumented mutator program
// (list build + repeated summation), here comparing the two execution
// engines rather than the transformation variants.
const char *CpuProgram = R"(
TYPE Node = OBJECT v : INTEGER; next : Node; END;
VAR head : Node; total : INTEGER;

PROCEDURE BuildList(n : INTEGER) =
VAR p : Node; i : INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO n DO
    p := NEW(Node);
    p.v := i;
    p.next := head;
    head := p;
  END;
END BuildList;

PROCEDURE SumList() : INTEGER =
VAR p : Node; s : INTEGER;
BEGIN
  s := 0;
  p := head;
  WHILE p # NIL DO
    s := s + p.v;
    p := p.next;
  END;
  RETURN s;
END SumList;

PROCEDURE Work(rounds : INTEGER) : INTEGER =
VAR i : INTEGER;
BEGIN
  total := 0;
  FOR i := 1 TO rounds DO
    total := total + SumList() MOD 1000;
  END;
  RETURN total;
END Work;
)";

struct CompiledProgram {
  Module M;
  SemaInfo Info;
  DiagnosticEngine Diags;
};

std::unique_ptr<CompiledProgram> compileProgram(const char *Source) {
  auto C = std::make_unique<CompiledProgram>();
  C->M = parseModule(Source, C->Diags);
  C->Info = analyze(C->M, C->Diags);
  assert(!C->Diags.hasErrors());
  transform::transform(C->M, C->Info, transform::TransformOptions());
  return C;
}

constexpr int NumLanes = 8;
constexpr int LaneDepth = 6;

std::unique_ptr<Interp> makeLaneInterp(const CompiledProgram &C,
                                       unsigned Workers, bool Bytecode) {
  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  auto I = std::make_unique<Interp>(C.M, C.Info, ExecMode::Alphonse, Cfg,
                                    Bytecode);
  I->call("Setup", {Value::integer(NumLanes), Value::integer(LaneDepth)});
  I->call("Demand"); // Materialize every lane's instance chain.
  I->pump();
  assert(!I->failed());
  return I;
}

/// One repair cycle: dirty every lane's leaf, then drain the eager wave.
void repairCycle(Interp &I, long &Tick) {
  I.call("BumpAll", {Value::integer(++Tick)});
  I.pump();
}

/// The lane workload swept over worker counts (compiled engine). Each
/// iteration repairs NumLanes * LaneDepth instances, each blocking in
/// pause(200); independent partitions let workers overlap that time.
void BM_InterpParallelWaves(benchmark::State &State) {
  auto C = compileProgram(LaneProgram);
  auto I = makeLaneInterp(*C, static_cast<unsigned>(State.range(0)),
                          /*Bytecode=*/true);
  long Tick = 100;
  for (auto _ : State)
    repairCycle(*I, Tick);
  State.counters["workers"] =
      static_cast<double>(State.range(0));
}
BENCHMARK(BM_InterpParallelWaves)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Same workload under the tree-walker for reference: every node is
/// serial-pinned, so worker counts change nothing and the whole wave
/// drains on the mop-up thread.
void BM_InterpTreewalkWaves(benchmark::State &State) {
  auto C = compileProgram(LaneProgram);
  auto I = makeLaneInterp(*C, static_cast<unsigned>(State.range(0)),
                          /*Bytecode=*/false);
  long Tick = 100;
  for (auto _ : State)
    repairCycle(*I, Tick);
}
BENCHMARK(BM_InterpTreewalkWaves)->Arg(0)->Arg(4)->Unit(
    benchmark::kMillisecond);

/// The E15 acceptance number in one run: interleaves 4-worker and serial
/// repair cycles on the compiled engine and reports their ratio as
/// speedup_4w (>= 2 expected — blocked recomputes overlap even on one
/// core).
void BM_InterpWaveSpeedup(benchmark::State &State) {
  auto C = compileProgram(LaneProgram);
  auto Par = makeLaneInterp(*C, /*Workers=*/4, /*Bytecode=*/true);
  auto Ser = makeLaneInterp(*C, /*Workers=*/0, /*Bytecode=*/true);
  long TickP = 100, TickS = 100;
  double ParNs = 0, SerNs = 0;
  using Clock = std::chrono::steady_clock;
  for (auto _ : State) {
    auto T0 = Clock::now();
    repairCycle(*Par, TickP);
    auto T1 = Clock::now();
    State.PauseTiming();
    auto T2 = Clock::now();
    repairCycle(*Ser, TickS);
    auto T3 = Clock::now();
    ParNs += std::chrono::duration<double, std::nano>(T1 - T0).count();
    SerNs += std::chrono::duration<double, std::nano>(T3 - T2).count();
    State.ResumeTiming();
  }
  State.counters["speedup_4w"] = ParNs > 0 ? SerNs / ParNs : 0;
}
BENCHMARK(BM_InterpWaveSpeedup)->Unit(benchmark::kMillisecond);

/// Transform-style CPU-bound run through both engines at Workers = 0.
/// compiled_vs_treewalk = treewalk-ns / bytecode-ns (> 1 means the
/// bytecode engine is faster).
void BM_InterpCompiledVsTreewalk(benchmark::State &State) {
  auto C = compileProgram(CpuProgram);
  DepGraph::Config Cfg;
  Interp BC(C->M, C->Info, ExecMode::Alphonse, Cfg, /*EnableBytecode=*/true);
  Interp TW(C->M, C->Info, ExecMode::Alphonse, Cfg, /*EnableBytecode=*/false);
  BC.call("BuildList", {Value::integer(200)});
  TW.call("BuildList", {Value::integer(200)});
  double BcNs = 0, TwNs = 0;
  using Clock = std::chrono::steady_clock;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Value VB = BC.call("Work", {Value::integer(50)});
    auto T1 = Clock::now();
    State.PauseTiming();
    auto T2 = Clock::now();
    Value VT = TW.call("Work", {Value::integer(50)});
    auto T3 = Clock::now();
    BcNs += std::chrono::duration<double, std::nano>(T1 - T0).count();
    TwNs += std::chrono::duration<double, std::nano>(T3 - T2).count();
    benchmark::DoNotOptimize(VB);
    benchmark::DoNotOptimize(VT);
    assert(VB == VT);
    State.ResumeTiming();
  }
  State.counters["compiled_vs_treewalk"] = BcNs > 0 ? TwNs / BcNs : 0;
}
BENCHMARK(BM_InterpCompiledVsTreewalk)->Unit(benchmark::kMillisecond);

} // namespace

ALPHONSE_BENCH_MAIN();
