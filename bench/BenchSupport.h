//===- BenchSupport.h - Shared benchmark helpers ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment benchmarks (see DESIGN.md Section 4
/// for the experiment index E1..E12).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_BENCH_BENCHSUPPORT_H
#define ALPHONSE_BENCH_BENCHSUPPORT_H

#include "trees/HeightTree.h"

#include <vector>

namespace alphonse::bench {

/// Builds a perfect binary tree with \p Count nodes (Count = 2^k - 1) and
/// returns all nodes in level order (root first).
inline std::vector<trees::HeightTree::Node *>
buildPerfectTree(trees::HeightTree &Tree, size_t Count) {
  std::vector<trees::HeightTree::Node *> Nodes;
  Nodes.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Nodes.push_back(Tree.makeNode());
  for (size_t I = 0; I < Count; ++I) {
    if (2 * I + 1 < Count)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < Count)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }
  return Nodes;
}

} // namespace alphonse::bench

#endif // ALPHONSE_BENCH_BENCHSUPPORT_H
