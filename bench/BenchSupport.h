//===- BenchSupport.h - Shared benchmark helpers ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment benchmarks (see DESIGN.md Section 4
/// for the experiment index E1..E12), plus the machine-readable result
/// harness: every bench binary uses ALPHONSE_BENCH_MAIN() instead of
/// BENCHMARK_MAIN(), which adds a `--json FILE` flag that writes one JSON
/// document per run — benchmark name, iteration count, wall time per
/// iteration, and peak RSS — for tools/run_benches.sh to aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_BENCH_BENCHSUPPORT_H
#define ALPHONSE_BENCH_BENCHSUPPORT_H

#include "trees/HeightTree.h"

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace alphonse::bench {

/// Builds a perfect binary tree with \p Count nodes (Count = 2^k - 1) and
/// returns all nodes in level order (root first).
inline std::vector<trees::HeightTree::Node *>
buildPerfectTree(trees::HeightTree &Tree, size_t Count) {
  std::vector<trees::HeightTree::Node *> Nodes;
  Nodes.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Nodes.push_back(Tree.makeNode());
  for (size_t I = 0; I < Count; ++I) {
    if (2 * I + 1 < Count)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < Count)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }
  return Nodes;
}

//===----------------------------------------------------------------------===//
// Machine-readable results (--json)
//===----------------------------------------------------------------------===//

/// One finished (non-aggregate) benchmark run.
struct JsonResult {
  std::string Name;
  int64_t Iterations;
  double NsPerOp;
  /// The run's user counters (State.counters), e.g. bench_space's
  /// bytes_per_edge / bytes_per_node, in registration order.
  std::vector<std::pair<std::string, double>> Counters;
};

/// Console reporter that additionally collects per-run numbers for the
/// JSON writer (aggregates and errored runs are skipped).
class JsonReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonReporter(std::vector<JsonResult> &Out) : Out(Out) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      // GetAdjustedRealTime is in the benchmark's display unit; normalize
      // to nanoseconds so every entry means the same thing.
      double NsPerOp = R.GetAdjustedRealTime() /
                       benchmark::GetTimeUnitMultiplier(R.time_unit) * 1e9;
      std::vector<std::pair<std::string, double>> Counters;
      for (const auto &KV : R.counters)
        Counters.emplace_back(KV.first, static_cast<double>(KV.second));
      Out.push_back({R.benchmark_name(), static_cast<int64_t>(R.iterations),
                     NsPerOp, std::move(Counters)});
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  std::vector<JsonResult> &Out;
};

inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

/// Writes the collected runs as one JSON document: benchmark name,
/// iterations, wall nanoseconds per operation, plus the process's peak
/// RSS and the host's hardware concurrency (so speedup numbers can be
/// read in context).
inline bool writeJsonResults(const std::string &Path,
                             const std::vector<JsonResult> &Results) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  long PeakRssKb = 0;
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) == 0)
    PeakRssKb = RU.ru_maxrss; // KiB on Linux.
  std::fprintf(F,
               "{\n"
               "  \"host_concurrency\": %u,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"benchmarks\": [\n",
               std::thread::hardware_concurrency(), PeakRssKb);
  for (size_t I = 0; I < Results.size(); ++I) {
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"ns_per_op\": %.2f",
                 jsonEscape(Results[I].Name).c_str(),
                 static_cast<long long>(Results[I].Iterations),
                 Results[I].NsPerOp);
    if (!Results[I].Counters.empty()) {
      std::fprintf(F, ", \"counters\": {");
      for (size_t C = 0; C < Results[I].Counters.size(); ++C)
        std::fprintf(F, "%s\"%s\": %g", C ? ", " : "",
                     jsonEscape(Results[I].Counters[C].first).c_str(),
                     Results[I].Counters[C].second);
      std::fprintf(F, "}");
    }
    std::fprintf(F, "}%s\n", I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

/// main() body for every bench binary: peels `--json FILE` off the
/// command line, forwards the rest to Google Benchmark, and writes the
/// JSON document after the run.
inline int benchMain(int Argc, char **Argv) {
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    Args.push_back(Argv[I]);
  }
  int FilteredArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&FilteredArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(FilteredArgc, Args.data()))
    return 1;
  int Status = 0;
  if (JsonPath.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::vector<JsonResult> Results;
    JsonReporter Rep(Results);
    benchmark::RunSpecifiedBenchmarks(&Rep);
    if (!writeJsonResults(JsonPath, Results)) {
      std::fprintf(stderr, "error: cannot write JSON results to '%s'\n",
                   JsonPath.c_str());
      Status = 1;
    }
  }
  benchmark::Shutdown();
  return Status;
}

} // namespace alphonse::bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the --json flag.
#define ALPHONSE_BENCH_MAIN()                                                  \
  int main(int argc, char **argv) {                                            \
    return ::alphonse::bench::benchMain(argc, argv);                           \
  }

#endif // ALPHONSE_BENCH_BENCHSUPPORT_H
